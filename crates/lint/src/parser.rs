//! Structural parser: token stream → [`FileItems`].
//!
//! A single linear pass over the positioned token stream recovers the
//! item structure the call graph needs: `impl`/`trait` blocks (method
//! ownership), `fn` definitions with parameter and `let` bindings
//! (receiver-type hints), struct fields (field-chain receiver hints),
//! and every call expression — free, method, or macro — inside fn
//! bodies. It is *recognition*, not full parsing: constructs it does
//! not model (closure parameter types, items nested inside fn bodies
//! other than fns, qualified `<T as Trait>::…` paths) degrade to
//! "unknown", which the call graph reports rather than drops.
//!
//! Brace depth is tracked globally; each recognized scope (`impl`,
//! `trait`, `fn`) records the depth at which it opened and is popped
//! when the matching brace closes, so nested fns and `mod tests { … }`
//! blocks attribute calls to the right function.

use crate::items::{
    Binding, CallKind, CallSite, FileItems, FnDef, Receiver, RecvLink, StructDef, TraitDef,
};
use crate::lexer::{Lexed, Token, TokenKind};

/// Idents that can never head a call expression.
const KEYWORDS: [&str; 33] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "mut",
    "ref", "move", "in", "as", "where", "pub", "crate", "super", "use", "mod", "fn", "impl",
    "trait", "struct", "enum", "union", "type", "const", "static", "unsafe", "dyn", "await",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s) || s == "self" || s == "true" || s == "false"
}

enum Scope {
    Impl { ty: String, tr: Option<String> },
    Trait { name: String },
    Fn { idx: usize },
}

struct Parser<'a> {
    t: &'a [Token],
    out: FileItems,
    scopes: Vec<(Scope, u32)>,
    depth: u32,
}

/// Parse one file's token stream into its item model.
pub fn parse_file(lexed: &Lexed) -> FileItems {
    let mut p = Parser {
        t: &lexed.tokens,
        out: FileItems::default(),
        scopes: Vec::new(),
        depth: 0,
    };
    p.run();
    p.out
}

impl<'a> Parser<'a> {
    fn run(&mut self) {
        let mut i = 0;
        while i < self.t.len() {
            i = self.step(i);
        }
        // Unterminated scopes (truncated input): close at the last line.
        let last_line = self.t.last().map_or(0, |t| t.line);
        while let Some((scope, _)) = self.scopes.pop() {
            if let Scope::Fn { idx } = scope {
                self.out.fns[idx].end_line = last_line;
            }
        }
    }

    /// Process the token at `i`; return the next index to process.
    fn step(&mut self, i: usize) -> usize {
        let tok = &self.t[i];
        match tok.kind {
            TokenKind::Punct => match tok.text.as_str() {
                "{" => {
                    self.depth += 1;
                    i + 1
                }
                "}" => {
                    self.depth = self.depth.saturating_sub(1);
                    while self
                        .scopes
                        .last()
                        .is_some_and(|(_, open)| *open > self.depth)
                    {
                        let (scope, _) = self.scopes.pop().expect("scope stack is non-empty");
                        if let Scope::Fn { idx } = scope {
                            self.out.fns[idx].end_line = tok.line;
                        }
                    }
                    i + 1
                }
                "#" => self.skip_attribute(i),
                "." => self.method_call(i),
                _ => i + 1,
            },
            TokenKind::Ident => self.ident(i),
            _ => i + 1,
        }
    }

    fn ident(&mut self, i: usize) -> usize {
        let name = self.t[i].text.as_str();
        let in_fn = self.innermost_fn().is_some();
        match name {
            "impl" if !in_fn => self.impl_header(i),
            "trait" if !in_fn && self.is_ident_at(i + 1) => self.trait_header(i),
            "struct" if !in_fn && self.is_ident_at(i + 1) => self.struct_def(i),
            "fn" if self.is_ident_at(i + 1) => self.fn_def(i),
            "let" if in_fn => self.let_binding(i),
            _ if in_fn && !is_keyword(name) && !self.prev_is(i, "::") && !self.prev_is(i, ".") => {
                self.free_or_macro_call(i)
            }
            _ => i + 1,
        }
    }

    // ----- helpers ------------------------------------------------------

    fn is_ident_at(&self, i: usize) -> bool {
        self.t.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn punct_at(&self, i: usize, s: &str) -> bool {
        self.t.get(i).is_some_and(|t| t.is_punct(s))
    }

    fn prev_is(&self, i: usize, s: &str) -> bool {
        i > 0 && self.t[i - 1].is_punct(s)
    }

    fn innermost_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|(s, _)| match s {
            Scope::Fn { idx } => Some(*idx),
            _ => None,
        })
    }

    /// Enclosing impl/trait context: `(owner type, trait impl, in trait)`.
    fn owner(&self) -> (Option<String>, Option<String>, bool) {
        for (s, _) in self.scopes.iter().rev() {
            match s {
                Scope::Impl { ty, tr } => return (Some(ty.clone()), tr.clone(), false),
                Scope::Trait { name } => return (Some(name.clone()), None, true),
                Scope::Fn { .. } => {}
            }
        }
        (None, None, false)
    }

    /// `t[i]` is `<`: index just past the matching `>` (or EOF).
    fn skip_angles(&self, i: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < self.t.len() {
            match self.t[j].text.as_str() {
                "<" if self.t[j].kind == TokenKind::Punct => depth += 1,
                ">" if self.t[j].kind == TokenKind::Punct => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.t.len()
    }

    /// `t[i]` is `open`: index just past the matching `close` (or EOF).
    fn skip_group(&self, i: usize, open: &str, close: &str) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < self.t.len() {
            if self.t[j].is_punct(open) {
                depth += 1;
            } else if self.t[j].is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.t.len()
    }

    /// `#[…]` / `#![…]` attribute: skip it whole so `derive(Debug)` and
    /// friends never register as calls.
    fn skip_attribute(&self, i: usize) -> usize {
        let mut j = i + 1;
        if self.punct_at(j, "!") {
            j += 1;
        }
        if self.punct_at(j, "[") {
            self.skip_group(j, "[", "]")
        } else {
            i + 1
        }
    }

    /// Collect a `::`-separated ident path starting at `i` (turbofish
    /// segments skipped). Returns `(segments, index past the path)`.
    fn collect_path(&self, i: usize) -> (Vec<usize>, usize) {
        let mut segs = vec![i];
        let mut j = i + 1;
        loop {
            if self.punct_at(j, "::") && self.punct_at(j + 1, "<") {
                j = self.skip_angles(j + 1);
                continue;
            }
            if self.punct_at(j, "::") && self.is_ident_at(j + 1) {
                segs.push(j + 1);
                j += 2;
                continue;
            }
            break;
        }
        (segs, j)
    }

    // ----- item headers -------------------------------------------------

    /// `impl<…> Type {` / `impl<…> Trait for Type {`.
    fn impl_header(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        if self.punct_at(j, "<") {
            j = self.skip_angles(j);
        }
        let mut first: Vec<String> = Vec::new();
        let mut second: Vec<String> = Vec::new();
        let mut cur = &mut first;
        let mut saw_for = false;
        while j < self.t.len() && !self.t[j].is_punct("{") && !self.t[j].is_ident("where") {
            let t = &self.t[j];
            if t.is_ident("for") {
                saw_for = true;
                cur = &mut second;
                j += 1;
                continue;
            }
            if t.is_punct("<") {
                j = self.skip_angles(j);
                continue;
            }
            if t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut") {
                cur.push(t.text.clone());
            }
            j += 1;
        }
        while j < self.t.len() && !self.t[j].is_punct("{") {
            j += 1;
        }
        let ty_path = if saw_for { &second } else { &first };
        let ty = ty_path.last().cloned().unwrap_or_default();
        let tr = if saw_for { first.last().cloned() } else { None };
        if let (Some(tr), true) = (&tr, !ty.is_empty()) {
            self.out.trait_impls.push((tr.clone(), ty.clone()));
        }
        if j < self.t.len() {
            self.depth += 1;
            self.scopes.push((Scope::Impl { ty, tr }, self.depth));
        }
        j + 1
    }

    /// `trait Name: Bounds {`.
    fn trait_header(&mut self, i: usize) -> usize {
        let name = self.t[i + 1].text.clone();
        self.out.traits.push(TraitDef {
            name: name.clone(),
            line: self.t[i].line,
        });
        let mut j = i + 2;
        while j < self.t.len() && !self.t[j].is_punct("{") && !self.t[j].is_punct(";") {
            if self.t[j].is_punct("<") {
                j = self.skip_angles(j);
            } else {
                j += 1;
            }
        }
        if j < self.t.len() && self.t[j].is_punct("{") {
            self.depth += 1;
            self.scopes.push((Scope::Trait { name }, self.depth));
        }
        j + 1
    }

    /// `struct Name … { fields }` / tuple / unit struct.
    fn struct_def(&mut self, i: usize) -> usize {
        let name = self.t[i + 1].text.clone();
        let line = self.t[i].line;
        let mut j = i + 2;
        while j < self.t.len()
            && !self.t[j].is_punct("{")
            && !self.t[j].is_punct("(")
            && !self.t[j].is_punct(";")
        {
            if self.t[j].is_punct("<") {
                j = self.skip_angles(j);
            } else {
                j += 1;
            }
        }
        if j >= self.t.len() {
            return j;
        }
        if self.t[j].is_punct("(") {
            // Tuple struct: no named fields to record.
            self.out.structs.push(StructDef {
                name,
                fields: vec![],
                line,
            });
            return self.skip_group(j, "(", ")");
        }
        if self.t[j].is_punct(";") {
            self.out.structs.push(StructDef {
                name,
                fields: vec![],
                line,
            });
            return j + 1;
        }
        // Named fields: parse `ident: Type` pairs up to the matching `}`.
        let end = self.skip_group(j, "{", "}");
        let mut fields = Vec::new();
        let mut k = j + 1;
        while k + 1 < end {
            if self.punct_at(k, "#") {
                k = self.skip_attribute(k);
                continue;
            }
            if self.t[k].is_ident("pub") {
                k += 1;
                if self.punct_at(k, "(") {
                    k = self.skip_group(k, "(", ")");
                }
                continue;
            }
            if self.is_ident_at(k) && self.punct_at(k + 1, ":") {
                let fname = self.t[k].text.clone();
                let (ty, next) = self.collect_type(k + 2, end - 1);
                fields.push((fname, ty));
                k = next + 1; // past the `,` (or at `}`)
                continue;
            }
            k += 1;
        }
        self.out.structs.push(StructDef { name, fields, line });
        end
    }

    /// Collect type tokens from `from` until a top-level `,`, `=` or `;`
    /// (or `stop`). Returns `(tokens, index of the terminator)`.
    fn collect_type(&self, from: usize, stop: usize) -> (Vec<String>, usize) {
        let mut ty = Vec::new();
        let (mut angle, mut paren, mut bracket) = (0i32, 0i32, 0i32);
        let mut j = from;
        while j < stop.min(self.t.len()) {
            let t = &self.t[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "(" => paren += 1,
                    ")" => {
                        if paren == 0 {
                            break;
                        }
                        paren -= 1;
                    }
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "," | "=" | ";" if angle <= 0 && paren == 0 && bracket == 0 => break,
                    _ => {}
                }
            }
            ty.push(t.text.clone());
            j += 1;
        }
        (ty, j)
    }

    /// `fn name<…>(params) -> Ret { body }` (or `;` for signatures).
    fn fn_def(&mut self, i: usize) -> usize {
        let name = self.t[i + 1].text.clone();
        let line = self.t[i].line;
        let (owner, trait_impl, in_trait) = self.owner();
        let mut j = i + 2;
        if self.punct_at(j, "<") {
            j = self.skip_angles(j);
        }
        if !self.punct_at(j, "(") {
            return i + 1; // not a fn item shape we recognize
        }
        let params_end = self.skip_group(j, "(", ")");
        let params = self.parse_params(j + 1, params_end - 1, owner.as_deref());
        // Skip return type + where clause to the body (or `;`).
        let mut k = params_end;
        while k < self.t.len() && !self.t[k].is_punct("{") && !self.t[k].is_punct(";") {
            if self.t[k].is_punct("<") {
                k = self.skip_angles(k);
            } else {
                k += 1;
            }
        }
        let has_body = k < self.t.len() && self.t[k].is_punct("{");
        let end_line = self.t.get(k).map_or(line, |t| t.line);
        self.out.fns.push(FnDef {
            name,
            owner,
            trait_impl,
            in_trait,
            line,
            end_line,
            params,
            locals: Vec::new(),
            calls: Vec::new(),
            has_body,
        });
        if has_body {
            self.depth += 1;
            let idx = self.out.fns.len() - 1;
            self.scopes.push((Scope::Fn { idx }, self.depth));
        }
        k + 1
    }

    /// Parameter list between `from..to` (paren-exclusive).
    fn parse_params(&self, from: usize, to: usize, owner: Option<&str>) -> Vec<Binding> {
        let mut params = Vec::new();
        let mut k = from;
        while k < to {
            if self.punct_at(k, "#") {
                k = self.skip_attribute(k);
                continue;
            }
            // One parameter: tokens up to the next top-level `,`.
            let start = k;
            let (mut angle, mut paren, mut bracket) = (0i32, 0i32, 0i32);
            while k < to {
                let t = &self.t[k];
                if t.kind == TokenKind::Punct {
                    match t.text.as_str() {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        "," if angle <= 0 && paren == 0 && bracket == 0 => break,
                        _ => {}
                    }
                }
                k += 1;
            }
            self.param_binding(start, k, owner, &mut params);
            k += 1; // past the `,`
        }
        params
    }

    /// One parameter slice → binding (when it has the `name: Type` or
    /// `self` shape; patterns are skipped).
    fn param_binding(&self, from: usize, to: usize, owner: Option<&str>, out: &mut Vec<Binding>) {
        let mut k = from;
        // `self` forms: `self`, `&self`, `&mut self`, `mut self`, `&'a self`.
        while k < to
            && (self.punct_at(k, "&")
                || self.t[k].is_ident("mut")
                || self.t[k].kind == TokenKind::Lifetime)
        {
            k += 1;
        }
        if k < to && self.t[k].is_ident("self") {
            if let Some(o) = owner {
                out.push(Binding {
                    name: "self".into(),
                    ty: vec![o.to_string()],
                    at: from,
                });
            }
            return;
        }
        // `name: Type` / `mut name: Type`.
        let mut k = from;
        if k < to && self.t[k].is_ident("mut") {
            k += 1;
        }
        if k + 1 < to && self.is_ident_at(k) && self.punct_at(k + 1, ":") {
            let name = self.t[k].text.clone();
            if is_keyword(&name) {
                return;
            }
            let ty: Vec<String> = self.t[k + 2..to].iter().map(|t| t.text.clone()).collect();
            out.push(Binding { name, ty, at: from });
        }
    }

    /// `let [mut] name [: Type] = …` — records the binding (typed from
    /// the ascription or inferred from a constructor/struct-literal RHS)
    /// and leaves the RHS for normal call scanning. Pattern `let`s
    /// (`let Some(x) = …`) record nothing.
    fn let_binding(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        if self.t.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        if !self.is_ident_at(j) || is_keyword(&self.t[j].text) {
            return i + 1;
        }
        let name = self.t[j].text.clone();
        let name_at = j;
        let mut ty;
        let mut resume = j + 1;
        if self.punct_at(j + 1, ":") {
            let (t, term) = self.collect_type(j + 2, self.t.len());
            ty = t;
            resume = term; // types contain no calls — skip them
        } else if self.punct_at(j + 1, "=") {
            ty = self.infer_rhs_type(j + 2);
        } else {
            // `let name;` or something we don't model.
            return j + 1;
        }
        if self.punct_at(resume, "=") && ty.is_empty() {
            // Ascription was empty/unknown but an initializer follows.
            ty = self.infer_rhs_type(resume + 1);
        }
        if let Some(idx) = self.innermost_fn() {
            self.out.fns[idx].locals.push(Binding {
                name,
                ty,
                at: name_at,
            });
        }
        resume.max(j + 1)
    }

    /// Type hint from an initializer expression: `Type::ctor(…)` /
    /// `Type { … }` / `Self { … }` → the type name; anything else →
    /// unknown.
    fn infer_rhs_type(&self, i: usize) -> Vec<String> {
        if !self.is_ident_at(i) || is_keyword(&self.t[i].text) {
            return Vec::new();
        }
        if self.t[i].is_ident("Self") {
            let (owner, _, _) = self.owner();
            return owner.map(|o| vec![o]).unwrap_or_default();
        }
        let (segs, j) = self.collect_path(i);
        let upper = |k: &usize| {
            self.t[*k]
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_uppercase())
        };
        if self.punct_at(j, "{") && segs.last().is_some_and(upper) {
            // Struct literal — but only if the last segment names a type.
            return vec![self.t[*segs.last().expect("path is non-empty")]
                .text
                .clone()];
        }
        if segs.len() > 1 {
            // `HashMap::new()`, `ShardSlots::new(…)` → last capitalized
            // segment. Bare calls (`relock(…)`) give no hint.
            if let Some(k) = segs.iter().rev().find(|k| upper(k)) {
                return vec![self.t[*k].text.clone()];
            }
        }
        Vec::new()
    }

    // ----- calls --------------------------------------------------------

    /// `.name(…)` / `.name::<…>(…)` method call (at the `.` token).
    fn method_call(&mut self, i: usize) -> usize {
        let Some(idx) = self.innermost_fn() else {
            return i + 1;
        };
        // Not a method position: `..` range on either side.
        if self.prev_is(i, ".") || self.punct_at(i + 1, ".") {
            return i + 1;
        }
        if !self.is_ident_at(i + 1) || self.t[i + 1].is_ident("await") {
            return i + 1;
        }
        let mut j = i + 2;
        if self.punct_at(j, "::") && self.punct_at(j + 1, "<") {
            j = self.skip_angles(j + 1);
        }
        if !self.punct_at(j, "(") {
            return i + 1; // field access
        }
        let args_end = self.skip_group(j, "(", ")");
        let receiver = self.receiver_chain(i.wrapping_sub(1));
        self.out.fns[idx].calls.push(CallSite {
            kind: CallKind::Method,
            name: self.t[i + 1].text.clone(),
            qualifier: None,
            receiver,
            arg_ident: None,
            line: self.t[i + 1].line,
            at: i + 1,
            args: (j + 1, args_end - 1),
        });
        i + 2 // rescan from `(`: nested calls in the args are real calls
    }

    /// Walk the receiver chain backwards from token `k` (the token just
    /// before the method's `.`).
    fn receiver_chain(&self, mut k: usize) -> Receiver {
        let mut chain: Vec<RecvLink> = Vec::new();
        let mut indexed = false;
        loop {
            if k >= self.t.len() {
                return Receiver::default();
            }
            let t = &self.t[k];
            if t.is_punct("]") {
                // Balanced walk back to the matching `[`.
                let mut depth = 0i32;
                loop {
                    if self.t[k].is_punct("]") {
                        depth += 1;
                    } else if self.t[k].is_punct("[") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        return Receiver::default();
                    }
                    k -= 1;
                }
                if k == 0 {
                    return Receiver::default();
                }
                indexed = true;
                k -= 1;
                continue;
            }
            if t.kind == TokenKind::Ident && (t.text == "self" || !is_keyword(&t.text)) {
                if k > 0 && self.t[k - 1].is_punct("::") {
                    return Receiver::default(); // path receiver: not modeled
                }
                chain.insert(
                    0,
                    RecvLink {
                        name: t.text.clone(),
                        indexed,
                    },
                );
                indexed = false;
                if k >= 2 && self.t[k - 1].is_punct(".") && !self.t[k - 2].is_punct(".") {
                    k -= 2;
                    continue;
                }
                return Receiver { chain };
            }
            return Receiver::default(); // `)…`, literal, `?`, …
        }
    }

    /// Free call `path(…)`, macro `name!(…)`, or a plain path (skipped
    /// whole so its segments are not re-scanned as call heads).
    fn free_or_macro_call(&mut self, i: usize) -> usize {
        let idx = self.innermost_fn().expect("checked by caller");
        let (segs, j) = self.collect_path(i);
        let last = *segs.last().expect("path is non-empty");
        if self.punct_at(j, "!") {
            let open = self.t.get(j + 1).map(|t| t.text.as_str());
            if matches!(open, Some("(") | Some("[") | Some("{")) {
                self.out.fns[idx].calls.push(CallSite {
                    kind: CallKind::Macro,
                    name: self.t[last].text.clone(),
                    qualifier: None,
                    receiver: Receiver::default(),
                    arg_ident: None,
                    line: self.t[last].line,
                    at: last,
                    args: (j + 2, j + 2),
                });
                // Rescan inside the macro args: they are expressions in
                // every macro this workspace uses.
                return j + 2;
            }
            return j + 1;
        }
        if self.punct_at(j, "(") {
            let args_end = self.skip_group(j, "(", ")");
            let arg_ident = if args_end == j + 3 && self.is_ident_at(j + 1) {
                Some(self.t[j + 1].text.clone())
            } else {
                None
            };
            let qualifier = if segs.len() >= 2 {
                Some(self.t[segs[segs.len() - 2]].text.clone())
            } else {
                None
            };
            self.out.fns[idx].calls.push(CallSite {
                kind: CallKind::Free,
                name: self.t[last].text.clone(),
                qualifier,
                receiver: Receiver::default(),
                arg_ident,
                line: self.t[last].line,
                at: last,
                args: (j + 1, args_end - 1),
            });
            return j + 1; // rescan args
        }
        j.max(i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileItems {
        parse_file(&lex(src))
    }

    #[test]
    fn recovers_fns_with_owners() {
        let items = parse(
            "fn free() {}\n\
             struct Foo { x: u32 }\n\
             impl Foo { fn method(&self) {} }\n\
             trait Bar { fn sig(&self); fn dflt(&self) { self.sig() } }\n\
             impl Bar for Foo { fn sig(&self) {} }\n",
        );
        let names: Vec<String> = items.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(
            names,
            ["free", "Foo::method", "Bar::sig", "Bar::dflt", "Foo::sig"]
        );
        assert!(items.fns[2].in_trait && !items.fns[2].has_body);
        assert!(items.fns[3].in_trait && items.fns[3].has_body);
        assert_eq!(items.fns[4].trait_impl.as_deref(), Some("Bar"));
        assert_eq!(
            items.trait_impls,
            vec![("Bar".to_string(), "Foo".to_string())]
        );
    }

    #[test]
    fn records_method_calls_with_receiver_chains() {
        let items = parse(
            "fn f(q: &ParallelQueue) {\n\
                 q.slots.shards[s].lock();\n\
                 self.head_time[w].load(x);\n\
             }\n",
        );
        let calls = &items.fns[0].calls;
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].name, "lock");
        let c0: Vec<(&str, bool)> = calls[0]
            .receiver
            .chain
            .iter()
            .map(|l| (l.name.as_str(), l.indexed))
            .collect();
        assert_eq!(c0, [("q", false), ("slots", false), ("shards", true)]);
        let c1: Vec<(&str, bool)> = calls[1]
            .receiver
            .chain
            .iter()
            .map(|l| (l.name.as_str(), l.indexed))
            .collect();
        assert_eq!(c1, [("self", false), ("head_time", true)]);
    }

    #[test]
    fn records_free_path_and_macro_calls() {
        let items = parse(
            "fn f() {\n\
                 relock(guard);\n\
                 ShardSlots::new(4, 2);\n\
                 std::mem::take(&mut v);\n\
                 panic!(\"boom {}\", compute());\n\
             }\n",
        );
        let calls = &items.fns[0].calls;
        let heads: Vec<(&str, Option<&str>, CallKind)> = calls
            .iter()
            .map(|c| (c.name.as_str(), c.qualifier.as_deref(), c.kind))
            .collect();
        assert_eq!(
            heads,
            [
                ("relock", None, CallKind::Free),
                ("new", Some("ShardSlots"), CallKind::Free),
                ("take", Some("mem"), CallKind::Free),
                ("panic", None, CallKind::Macro),
                ("compute", None, CallKind::Free), // inside the macro args
            ]
        );
        assert_eq!(calls[0].arg_ident.as_deref(), Some("guard"));
    }

    #[test]
    fn let_bindings_carry_type_hints() {
        let items = parse(
            "fn f() {\n\
                 let a: Vec<Mutex<DrainOut>> = Vec::new();\n\
                 let b = ShardSlots::new(4, 2);\n\
                 let mut c = DoneGuard { pool: p };\n\
                 let d = helper();\n\
                 let Some(e) = opt else { return };\n\
             }\n",
        );
        let f = &items.fns[0];
        let get = |n: &str| {
            f.locals
                .iter()
                .find(|b| b.name == n)
                .map(|b| b.ty.join(" "))
        };
        assert_eq!(get("a").as_deref(), Some("Vec < Mutex < DrainOut > >"));
        assert_eq!(get("b").as_deref(), Some("ShardSlots"));
        assert_eq!(get("c").as_deref(), Some("DoneGuard"));
        assert_eq!(get("d").as_deref(), Some(""));
        assert!(get("e").is_none(), "pattern lets record no binding");
    }

    #[test]
    fn nested_fns_and_closures_attribute_calls_correctly() {
        let items = parse(
            "fn outer() {\n\
                 fn inner() { alpha(); }\n\
                 let job = move |w: usize| { beta(w); };\n\
                 gamma();\n\
             }\n",
        );
        let outer = items.fns.iter().find(|f| f.name == "outer").expect("outer");
        let inner = items.fns.iter().find(|f| f.name == "inner").expect("inner");
        let inner_names: Vec<&str> = inner.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(inner_names, ["alpha"]);
        // Closure bodies belong to the enclosing fn.
        let outer_names: Vec<&str> = outer.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(outer_names, ["beta", "gamma"]);
    }

    #[test]
    fn generic_fns_and_turbofish_parse() {
        let items = parse(
            "fn g<T: Clone + Send>(x: T) -> Vec<T> where T: Sized {\n\
                 let v = x.clone::<T>();\n\
                 collect::<Vec<_>>(v)\n\
             }\n",
        );
        let f = &items.fns[0];
        assert_eq!(f.name, "g");
        assert_eq!(f.params.len(), 1);
        let names: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["clone", "collect"]);
    }

    #[test]
    fn struct_fields_are_typed() {
        let items = parse(
            "pub struct ShardSlots {\n\
                 pub shards: Vec<Mutex<BinaryHeap<Reverse<EventKey>>>>,\n\
                 head_time: Vec<AtomicU64>,\n\
                 n: usize,\n\
             }\n\
             struct Unit;\n\
             struct Tup(u32, u32);\n",
        );
        assert_eq!(items.structs.len(), 3);
        let s = &items.structs[0];
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0].0, "shards");
        assert_eq!(crate::items::type_head(&s.fields[1].1), Some("Vec"));
        assert_eq!(s.fields[2].1, vec!["usize".to_string()]);
    }

    #[test]
    fn ranges_are_not_method_calls() {
        let items = parse("fn f(n: usize) { for i in 0..n { work(i); } }\n");
        let names: Vec<&str> = items.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["work"]);
    }

    #[test]
    fn attributes_never_register_calls() {
        let items = parse(
            "#[derive(Debug, Clone)]\nstruct S { x: u32 }\n\
             fn f() {\n    #[allow(dead_code)]\n    let y = 1;\n    real();\n}\n",
        );
        let names: Vec<&str> = items.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["real"]);
    }

    #[test]
    fn fn_end_lines_cover_bodies() {
        let items = parse("fn a() {\n  x();\n  y();\n}\nfn b() {}\n");
        assert_eq!(items.fns[0].line, 1);
        assert_eq!(items.fns[0].end_line, 4);
        assert_eq!(items.fns[1].line, 5);
    }
}
