#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `mrvd-lint` — an offline, dependency-free determinism static-analysis
//! pass over this workspace's Rust sources.
//!
//! Every optimization PR in this repo is shippable only because results
//! stay **byte-identical** to a reference path. The bug classes that
//! invariant keeps catching are statically recognizable, so this crate
//! machine-checks them on every commit:
//!
//! | rule | pattern | historical bug it encodes |
//! |------|---------|---------------------------|
//! | D001 | HashMap/HashSet iteration in non-test code | hash order leaking into results |
//! | D002 | `Instant::now`/`SystemTime::now` outside timing paths | wall clock feeding simulation state |
//! | D003 | `thread_rng`/`rand::random`/`from_entropy` | ambient randomness breaking replay |
//! | D004 | float comparator sorts without an id tie-break | PR 6's permutation sensitivity |
//! | D005 | `as u32`/`as usize` in spatial region arithmetic | PR 7's `Grid` u32 overflow |
//! | D006 | `unsafe` without `// SAFETY:` | undocumented unsafety |
//! | D007 | `{:?}`-formatting hash collections into output | nondeterministic persisted reports |
//!
//! Suppression is explicit and auditable: inline
//! `// lint:allow(rule): reason` pragmas ([`pragma`]) and a checked-in
//! `lint.toml` path allowlist ([`config`]), each requiring a reason;
//! malformed and *unused* suppressions are findings themselves.
//!
//! Three enforcement surfaces share this library: the `mrvd-lint` binary
//! (human and `--format json` output), the workspace test
//! `tests/lint_clean.rs` (so `cargo test` is the gate), and the CI `lint`
//! job (which uploads `results/LINT_report.json` and proves the gate
//! fails on an injected violation).
//!
//! ```
//! use mrvd_lint::analyze_source;
//!
//! let analysis = analyze_source(
//!     "crates/demo/src/lib.rs",
//!     "fn f() { let t = std::time::Instant::now(); }",
//! );
//! assert_eq!(analysis.findings.len(), 1);
//! assert_eq!(analysis.findings[0].rule, "D002");
//! ```

pub mod config;
pub mod engine;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod walk;

pub use engine::{analyze_source, apply_suppressions, run_workspace, FileAnalysis};
pub use report::{Finding, Report, Suppression};
