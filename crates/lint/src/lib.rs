#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `mrvd-lint` — an offline, dependency-free determinism static-analysis
//! pass over this workspace's Rust sources.
//!
//! Every optimization PR in this repo is shippable only because results
//! stay **byte-identical** to a reference path. The bug classes that
//! invariant keeps catching are statically recognizable, so this crate
//! machine-checks them on every commit:
//!
//! | rule | pattern | historical bug it encodes |
//! |------|---------|---------------------------|
//! | D001 | HashMap/HashSet iteration in non-test code | hash order leaking into results |
//! | D002 | `Instant::now`/`SystemTime::now` outside timing paths | wall clock feeding simulation state |
//! | D003 | `thread_rng`/`rand::random`/`from_entropy` | ambient randomness breaking replay |
//! | D004 | float comparator sorts without an id tie-break | PR 6's permutation sensitivity |
//! | D005 | `as u32`/`as usize` in spatial region arithmetic | PR 7's `Grid` u32 overflow |
//! | D006 | `unsafe` without `// SAFETY:` | undocumented unsafety |
//! | D007 | `{:?}`-formatting hash collections into output | nondeterministic persisted reports |
//!
//! On top of the flat rules, a structural pass ([`parser`] → [`items`] →
//! [`callgraph`] → [`reach`]) recovers every fn, call expression and
//! struct field in the workspace, resolves calls into a call graph, and
//! computes the transitive closure of the parallel roots declared in
//! `lint.toml [roots]` (the `BroadcastPool` job closures and shard-drain
//! entry points). The **C rules** ([`crules`]) then hold that
//! worker-reachable set to a stricter standard:
//!
//! | rule | pattern in worker-reachable code |
//! |------|----------------------------------|
//! | C001 | any D001/D002/D003/D007 hit, even where a path would exempt it |
//! | C002 | panic-capable ops: `unwrap`/`expect`, panic-family macros, slice indexing, narrowing `as` |
//! | C003 | non-`Sync` interior mutability (`RefCell`/`Cell`/…), `static mut`, `thread_local!` |
//! | C004 | atomic load/store/RMW without an explicit `Ordering` argument |
//! | C005 | `thread::spawn` outside the sanctioned pool module |
//!
//! C findings carry the call chain (root → … → offending fn) and are
//! pragma-only: a `lint.toml` path prefix cannot excuse them.
//!
//! Suppression is explicit and auditable: inline
//! `// lint:allow(rule): reason` pragmas ([`pragma`]) and a checked-in
//! `lint.toml` path allowlist ([`config`]), each requiring a reason;
//! malformed and *unused* suppressions are findings themselves.
//!
//! Three enforcement surfaces share this library: the `mrvd-lint` binary
//! (human and `--format json` output), the workspace test
//! `tests/lint_clean.rs` (so `cargo test` is the gate), and the CI `lint`
//! job (which uploads `results/LINT_report.json` and proves the gate
//! fails on an injected violation).
//!
//! ```
//! use mrvd_lint::analyze_source;
//!
//! let analysis = analyze_source(
//!     "crates/demo/src/lib.rs",
//!     "fn f() { let t = std::time::Instant::now(); }",
//! );
//! assert_eq!(analysis.findings.len(), 1);
//! assert_eq!(analysis.findings[0].rule, "D002");
//! ```

pub mod callgraph;
pub mod config;
pub mod crules;
pub mod engine;
pub mod items;
pub mod lexer;
pub mod parser;
pub mod pragma;
pub mod reach;
pub mod report;
pub mod rules;
pub mod walk;

pub use engine::{
    analyze_source, apply_suppressions, run_workspace, scan_sources, scan_workspace, FileAnalysis,
    Scan,
};
pub use report::{Finding, Report, Suppression, SCHEMA_VERSION};
