//! The item model recovered by the structural parser.
//!
//! [`parser`](crate::parser) turns a file's positioned token stream into
//! these shapes: functions (with their parameter/local bindings and every
//! call expression in their bodies), structs (field types feed method
//! receiver resolution), and traits (dynamic-dispatch fan-out). The model
//! is deliberately *lexical* — types are kept as raw token strings and
//! interpreted by the small helpers at the bottom — because the linter
//! has no type inference and must stay dependency-free.

/// A `(name, declared type)` binding: a fn parameter or a `let` local.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Bound name.
    pub name: String,
    /// Declared (or constructor-inferred) type as raw token texts, e.g.
    /// `["Vec", "<", "Mutex", "<", "DrainOut", ">", ">"]`. Empty when the
    /// type could not be recovered.
    pub ty: Vec<String>,
    /// Token index of the binding site; later bindings shadow earlier
    /// ones, so lookups take the latest binding before the use site.
    pub at: usize,
}

/// One link of a method receiver chain: an ident, optionally indexed
/// (`a.b[i].c` → links `a`, `b` (indexed), `c`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvLink {
    /// The ident.
    pub name: String,
    /// Whether a `[…]` index follows this link.
    pub indexed: bool,
}

/// Receiver of a method call: a chain of `.`-separated idents rooted at
/// a variable or `self`. Empty chain means the receiver is not a simple
/// chain (a call result, a literal, a parenthesized expression, …).
#[derive(Debug, Clone, Default)]
pub struct Receiver {
    /// Chain links, outermost first (`self.slots.shards[s]` →
    /// `[self, slots, shards(indexed)]`).
    pub chain: Vec<RecvLink>,
}

/// What kind of call a [`CallSite`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// Bare or path-qualified call: `relock(…)`, `Type::new(…)`.
    Free,
    /// Method call: `recv.method(…)`.
    Method,
    /// Macro invocation: `panic!(…)`.
    Macro,
}

/// One call expression inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Call kind.
    pub kind: CallKind,
    /// Callee name (last path segment / method name / macro name).
    pub name: String,
    /// Last path segment before the name for qualified calls
    /// (`ShardSlots::new` → `ShardSlots`, `mem::take` → `mem`).
    pub qualifier: Option<String>,
    /// Receiver chain (method calls only).
    pub receiver: Receiver,
    /// For free calls whose argument list is a single ident
    /// (`drop(guard)`), that ident — drives the `drop` special case.
    pub arg_ident: Option<String>,
    /// 1-based source line of the callee token.
    pub line: u32,
    /// Token index of the callee token.
    pub at: usize,
    /// Token range of the argument list, parens excluded.
    pub args: (usize, usize),
}

/// One function (free fn, inherent/trait-impl method, or trait default
/// method/signature).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare fn name.
    pub name: String,
    /// Enclosing impl target type or trait name, if any.
    pub owner: Option<String>,
    /// The trait, when defined inside `impl Trait for Type`.
    pub trait_impl: Option<String>,
    /// Whether it is declared inside a `trait { … }` block.
    pub in_trait: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace (the `;` line for
    /// body-less trait signatures).
    pub end_line: u32,
    /// Parameter bindings (incl. a synthetic `self` binding in impls).
    pub params: Vec<Binding>,
    /// `let` bindings in the body, in source order.
    pub locals: Vec<Binding>,
    /// Every call expression in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Whether the fn has a body (trait signatures don't).
    pub has_body: bool,
}

impl FnDef {
    /// Display name: `Type::name` for methods, bare `name` otherwise.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// The type tokens bound to `name` at token position `before`:
    /// the latest local binding before it, falling back to parameters.
    pub fn binding_type(&self, name: &str, before: usize) -> Option<&[String]> {
        self.locals
            .iter()
            .rev()
            .find(|b| b.name == name && b.at < before)
            .or_else(|| self.params.iter().find(|b| b.name == name))
            .map(|b| b.ty.as_slice())
    }

    /// Whether `name` is bound to a local or parameter (closure args and
    /// fn params are how dynamic calls enter a body).
    pub fn binds(&self, name: &str) -> bool {
        self.params.iter().any(|b| b.name == name) || self.locals.iter().any(|b| b.name == name)
    }
}

/// A struct definition with named fields (tuple/unit structs keep an
/// empty field list).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// `(field name, type tokens)` pairs.
    pub fields: Vec<(String, Vec<String>)>,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
}

/// A trait definition (its methods appear as [`FnDef`]s with
/// `in_trait = true`).
#[derive(Debug, Clone)]
pub struct TraitDef {
    /// Trait name.
    pub name: String,
    /// 1-based line of the `trait` keyword.
    pub line: u32,
}

/// Everything the parser recovered from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// All functions, in source order.
    pub fns: Vec<FnDef>,
    /// All field-carrying struct definitions.
    pub structs: Vec<StructDef>,
    /// All trait definitions.
    pub traits: Vec<TraitDef>,
    /// `impl Trait for Type` pairs seen in the file.
    pub trait_impls: Vec<(String, String)>,
}

/// Keywords and primitives that can never be a resolvable type head.
const NON_TYPE_HEADS: [&str; 6] = ["dyn", "impl", "mut", "const", "fn", "where"];

/// First meaningful ident of a type token string: skips references,
/// mutability, lifetimes and `dyn`, so `&'p mut ShardSlots` →
/// `ShardSlots` and `&mut dyn FnMut(…)` → `FnMut`.
pub fn type_head(ty: &[String]) -> Option<&str> {
    ty.iter()
        .map(String::as_str)
        .find(|t| {
            !matches!(*t, "&" | "*" | "(" | ")")
                && !t.starts_with('\'')
                && !NON_TYPE_HEADS[..3].contains(t)
                && t.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
        })
        .filter(|t| !NON_TYPE_HEADS.contains(t))
}

/// Element type when a value of type `ty` is indexed: `Vec<T>` / `&[T]`
/// / `[T; N]` → `T`'s tokens. `None` when the container is unknown.
pub fn indexed_elem(ty: &[String]) -> Option<Vec<String>> {
    let mut i = 0;
    // Skip leading refs/mut/lifetimes.
    while i < ty.len() && (ty[i] == "&" || ty[i] == "mut" || ty[i].starts_with('\'')) {
        i += 1;
    }
    if i < ty.len() && ty[i] == "[" {
        // Slice or array: inner tokens up to `;` or the matching `]`.
        let mut depth = 1i32;
        let mut out = Vec::new();
        for t in &ty[i + 1..] {
            match t.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                ";" if depth == 1 => break,
                _ => {}
            }
            out.push(t.clone());
        }
        return Some(out);
    }
    if i < ty.len() && ty[i] == "Vec" && ty.get(i + 1).map(String::as_str) == Some("<") {
        let mut depth = 1i32;
        let mut out = Vec::new();
        for t in &ty[i + 2..] {
            match t.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            out.push(t.clone());
        }
        return Some(out);
    }
    None
}

/// Whether a type mentions an `Atomic*` ident (C004's receiver
/// evidence).
pub fn mentions_atomic(ty: &[String]) -> bool {
    ty.iter().any(|t| t.starts_with("Atomic"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn type_head_skips_refs_and_lifetimes() {
        assert_eq!(type_head(&toks("& 'p ShardSlots")), Some("ShardSlots"));
        assert_eq!(type_head(&toks("& mut Vec < u8 >")), Some("Vec"));
        assert_eq!(type_head(&toks("& mut dyn FnMut ( u8 )")), Some("FnMut"));
        assert_eq!(type_head(&toks("")), None);
    }

    #[test]
    fn indexed_elem_handles_vec_slice_array() {
        assert_eq!(
            indexed_elem(&toks("Vec < Mutex < DrainOut > >")),
            Some(toks("Mutex < DrainOut >"))
        );
        assert_eq!(
            indexed_elem(&toks("& [ EventKey ]")),
            Some(toks("EventKey"))
        );
        assert_eq!(indexed_elem(&toks("[ u32 ; 4 ]")), Some(toks("u32")));
        assert_eq!(indexed_elem(&toks("BTreeMap < u32 , u32 >")), None);
    }

    #[test]
    fn atomic_mention_is_detected() {
        assert!(mentions_atomic(&toks("Vec < AtomicU64 >")));
        assert!(mentions_atomic(&toks("AtomicUsize")));
        assert!(!mentions_atomic(&toks("Mutex < u64 >")));
    }

    #[test]
    fn binding_lookup_prefers_latest_local_then_params() {
        let f = FnDef {
            name: "f".into(),
            owner: None,
            trait_impl: None,
            in_trait: false,
            line: 1,
            end_line: 9,
            params: vec![Binding {
                name: "x".into(),
                ty: toks("u32"),
                at: 0,
            }],
            locals: vec![
                Binding {
                    name: "x".into(),
                    ty: toks("Foo"),
                    at: 10,
                },
                Binding {
                    name: "x".into(),
                    ty: toks("Bar"),
                    at: 20,
                },
            ],
            calls: vec![],
            has_body: true,
        };
        assert_eq!(f.binding_type("x", 15), Some(toks("Foo").as_slice()));
        assert_eq!(f.binding_type("x", 25), Some(toks("Bar").as_slice()));
        assert_eq!(f.binding_type("x", 5), Some(toks("u32").as_slice()));
        assert!(f.binds("x"));
        assert!(!f.binds("y"));
    }
}
