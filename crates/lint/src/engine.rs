//! Orchestration: walk the workspace, run the flat rules, build the call
//! graph, close over the declared parallel roots, run the reachability
//! rules, apply suppressions, audit the suppressions themselves.

use std::fs;
use std::path::Path;

use crate::callgraph::{CallGraph, FileInput};
use crate::config::{self, Config};
use crate::crules::{self, CRuleCtx, FnSpan};
use crate::lexer::{lex, Lexed};
use crate::parser::parse_file;
use crate::pragma::{parse_pragmas, Pragma};
use crate::reach;
use crate::report::{Finding, Report, Suppression};
use crate::rules::{check_all, detect_test_spans, is_reach_rule, FileCtx};
use crate::walk::{is_test_path, rust_files};

/// Analysis of a single source text, before config-level suppression.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Rule findings (not yet suppression-resolved).
    pub findings: Vec<Finding>,
    /// Parsed pragmas (well-formed and malformed).
    pub pragmas: Vec<Pragma>,
}

/// The full result of a workspace scan: the findings report plus the
/// call-graph artifact behind the C rules.
#[derive(Debug)]
pub struct Scan {
    /// Findings, suppressions, counts.
    pub report: Report,
    /// `LINT_callgraph.json` content: nodes, edges, the worker-reachable
    /// set with chains, and unresolved-call accounting.
    pub callgraph_json: String,
}

/// Lexes and rule-checks one source text with the flat (D) rules only.
/// `rel_path` decides path-scoped rules (D005) and path-level test
/// exemption; pass a `tests/`-free path to treat fixture text as
/// production code. Reachability rules need a whole workspace — see
/// [`scan_sources`].
pub fn analyze_source(rel_path: &str, source: &str) -> FileAnalysis {
    let lexed = lex(source);
    let test_spans = detect_test_spans(&lexed);
    let ctx = FileCtx {
        rel_path,
        lexed: &lexed,
        test_spans: &test_spans,
        is_test_path: is_test_path(rel_path),
    };
    let findings = check_all(&ctx)
        .into_iter()
        .map(|raw| Finding {
            rule: raw.rule.to_string(),
            path: rel_path.to_string(),
            line: raw.line,
            message: raw.message,
            suppressed: None,
            chain: vec![],
        })
        .collect();
    FileAnalysis {
        findings,
        pragmas: parse_pragmas(&lexed),
    }
}

/// Resolves suppressions for one file's findings in place. Returns, per
/// pragma, whether it suppressed at least one finding; config usage is
/// tracked in `config_used` (parallel to `config.allows`). C findings
/// are never config-suppressible — only a pragma at the site counts
/// (the config parser rejects C rules in `[[allow]]`, this is the
/// engine-side backstop).
pub fn resolve_suppressions(
    findings: &mut [Finding],
    pragmas: &[Pragma],
    config: &Config,
    config_used: &mut [bool],
) -> Vec<bool> {
    let mut pragma_used = vec![false; pragmas.len()];
    for f in findings.iter_mut() {
        // Pragmas win over the allowlist: they are closer to the code.
        for (pi, p) in pragmas.iter().enumerate() {
            if p.error.is_none()
                && p.target_line == Some(f.line)
                && p.rules.iter().any(|r| r == &f.rule)
            {
                f.suppressed = Some(Suppression::Pragma {
                    reason: p.reason.clone(),
                });
                pragma_used[pi] = true;
                break;
            }
        }
        if f.suppressed.is_some() || is_reach_rule(&f.rule) {
            continue;
        }
        for (ai, a) in config.allows.iter().enumerate() {
            if a.covers(&f.path, &f.rule) {
                f.suppressed = Some(Suppression::Config {
                    path: a.path.clone(),
                    reason: a.reason.clone(),
                });
                config_used[ai] = true;
                break;
            }
        }
    }
    pragma_used
}

/// Back-compat wrapper over [`resolve_suppressions`] for a
/// [`FileAnalysis`].
pub fn apply_suppressions(
    analysis: &mut FileAnalysis,
    config: &Config,
    config_used: &mut [bool],
) -> Vec<bool> {
    resolve_suppressions(
        &mut analysis.findings,
        &analysis.pragmas,
        config,
        config_used,
    )
}

/// Per-file state carried between the two scan passes.
struct FileScan {
    rel: String,
    lexed: Lexed,
    test_spans: Vec<(u32, u32)>,
    is_test_path: bool,
    items: crate::items::FileItems,
    pragmas: Vec<Pragma>,
    findings: Vec<Finding>,
}

/// Runs the full two-pass scan over in-memory `(rel_path, source)`
/// pairs: pass one lexes, parses and runs the flat rules per file; then
/// the workspace call graph is built, the closure of `config.roots`
/// computed, and the C rules run over each file's fn spans.
pub fn scan_sources(root_display: &str, files: &[(String, String)], config: &Config) -> Scan {
    // Pass one: per-file lexing, parsing, flat rules.
    let mut scans: Vec<FileScan> = files
        .iter()
        .map(|(rel, source)| {
            let lexed = lex(source);
            let test_spans = detect_test_spans(&lexed);
            let is_test = is_test_path(rel);
            let ctx = FileCtx {
                rel_path: rel,
                lexed: &lexed,
                test_spans: &test_spans,
                is_test_path: is_test,
            };
            let findings = check_all(&ctx)
                .into_iter()
                .map(|raw| Finding {
                    rule: raw.rule.to_string(),
                    path: rel.clone(),
                    line: raw.line,
                    message: raw.message,
                    suppressed: None,
                    chain: vec![],
                })
                .collect();
            let pragmas = parse_pragmas(&lexed);
            let items = parse_file(&lexed);
            FileScan {
                rel: rel.clone(),
                lexed,
                test_spans,
                is_test_path: is_test,
                items,
                pragmas,
                findings,
            }
        })
        .collect();

    // Pass two: call graph, roots, closure, C rules.
    let inputs: Vec<FileInput<'_>> = scans
        .iter()
        .map(|s| FileInput {
            rel: &s.rel,
            items: &s.items,
            test_spans: &s.test_spans,
            is_test_path: s.is_test_path,
        })
        .collect();
    let graph = CallGraph::build(&inputs);
    let mut root_ids: Vec<usize> = Vec::new();
    let mut root_findings: Vec<Finding> = Vec::new();
    for spec in &config.roots {
        let matched = graph.match_roots(&spec.name);
        if matched.is_empty() {
            root_findings.push(Finding {
                rule: "P005".into(),
                path: "lint.toml".into(),
                line: spec.line,
                message: format!(
                    "[roots] fn `{}` matches no function in the workspace — fix the name \
                     or remove the root",
                    spec.name
                ),
                suppressed: None,
                chain: vec![],
            });
        }
        for id in matched {
            if !root_ids.contains(&id) {
                root_ids.push(id);
            }
        }
    }
    let reach = reach::closure(graph.nodes.len(), &graph.adjacency(), &root_ids);
    let root_display_names: Vec<String> = config.roots.iter().map(|r| r.name.clone()).collect();
    let callgraph_json = graph.render_json(&reach, &root_ids, &root_display_names.join(", "));

    // Per-file fn spans with reachability + chains, then the C rules.
    let mut fn_spans: Vec<Vec<FnSpan>> = vec![Vec::new(); scans.len()];
    for (id, node) in graph.nodes.iter().enumerate() {
        let chain = if reach.is_reachable(id) {
            reach
                .chain_to(id)
                .into_iter()
                .map(|v| graph.nodes[v].name.clone())
                .collect()
        } else {
            Vec::new()
        };
        fn_spans[node.file].push(FnSpan {
            line: node.line,
            end_line: node.end_line,
            reachable: reach.is_reachable(id),
            chain,
        });
    }
    for (s, spans) in scans.iter_mut().zip(&fn_spans) {
        let ctx = CRuleCtx {
            rel_path: &s.rel,
            lexed: &s.lexed,
            test_spans: &s.test_spans,
            is_test_path: s.is_test_path,
            fn_spans: spans,
            has_roots: !root_ids.is_empty(),
            spawn_ok: &config.spawn_ok,
        };
        for c in crules::check_file(&ctx) {
            s.findings.push(Finding {
                rule: c.rule.to_string(),
                path: s.rel.clone(),
                line: c.line,
                message: c.message,
                suppressed: None,
                chain: c.chain,
            });
        }
    }

    // Suppression resolution + pragma/allowlist audits.
    let mut report = Report {
        root: root_display.to_string(),
        files_scanned: scans.len(),
        findings: root_findings,
    };
    let mut config_used = vec![false; config.allows.len()];
    for s in &mut scans {
        let pragma_used =
            resolve_suppressions(&mut s.findings, &s.pragmas, config, &mut config_used);
        for (pi, p) in s.pragmas.iter().enumerate() {
            if let Some(err) = &p.error {
                report.findings.push(Finding {
                    rule: "P001".into(),
                    path: s.rel.clone(),
                    line: p.line,
                    message: format!("malformed pragma: {err}"),
                    suppressed: None,
                    chain: vec![],
                });
            } else if !pragma_used[pi] {
                report.findings.push(Finding {
                    rule: "P002".into(),
                    path: s.rel.clone(),
                    line: p.line,
                    message: format!(
                        "unused pragma `lint:allow({})` — the finding it excused is gone; \
                         remove it",
                        p.rules.join(", ")
                    ),
                    suppressed: None,
                    chain: vec![],
                });
            }
        }
        report.findings.append(&mut s.findings);
    }
    for (ai, used) in config_used.iter().enumerate() {
        if !used {
            let a = &config.allows[ai];
            report.findings.push(Finding {
                rule: "P003".into(),
                path: "lint.toml".into(),
                line: a.line,
                message: format!(
                    "unused [[allow]] for path `{}` rule {} — the findings it excused are \
                     gone; remove it",
                    a.path, a.rule
                ),
                suppressed: None,
                chain: vec![],
            });
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Scan {
        report,
        callgraph_json,
    }
}

/// Runs the full scan over a workspace root. `lint.toml` at the root is
/// the (optional) allowlist + roots declaration.
pub fn scan_workspace(root: &Path) -> std::io::Result<Scan> {
    let (config, config_errors) = match fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => config::parse(&text),
        Err(_) => (Config::default(), Vec::new()),
    };
    let mut files = Vec::new();
    for rel in rust_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        files.push((rel, source));
    }
    let mut scan = scan_sources(&root.display().to_string(), &files, &config);
    for err in config_errors {
        scan.report.findings.push(Finding {
            rule: "P004".into(),
            path: "lint.toml".into(),
            line: 0,
            message: err,
            suppressed: None,
            chain: vec![],
        });
    }
    scan.report
        .findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(scan)
}

/// [`scan_workspace`], findings report only.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    scan_workspace(root).map(|s| s.report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_and_resolve(
        rel: &str,
        src: &str,
        toml: &str,
    ) -> (FileAnalysis, Vec<bool>, Vec<bool>) {
        let (config, errs) = config::parse(toml);
        assert!(errs.is_empty(), "{errs:?}");
        let mut analysis = analyze_source(rel, src);
        let mut config_used = vec![false; config.allows.len()];
        let pragma_used = apply_suppressions(&mut analysis, &config, &mut config_used);
        (analysis, pragma_used, config_used)
    }

    #[test]
    fn pragma_suppression_round_trip() {
        let src = "fn f() {\n  // lint:allow(D002): batch timing telemetry only\n  let t = std::time::Instant::now();\n}\n";
        let (a, pragma_used, _) = analyze_and_resolve("crates/x/src/a.rs", src, "");
        assert_eq!(a.findings.len(), 1);
        assert!(matches!(
            a.findings[0].suppressed,
            Some(Suppression::Pragma { .. })
        ));
        assert_eq!(pragma_used, vec![true]);
    }

    #[test]
    fn config_suppression_round_trip() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let toml = "[[allow]]\npath = \"crates/x\"\nrule = \"D002\"\nreason = \"demo timing\"\n";
        let (a, _, config_used) = analyze_and_resolve("crates/x/src/a.rs", src, toml);
        assert!(matches!(
            a.findings[0].suppressed,
            Some(Suppression::Config { .. })
        ));
        assert_eq!(config_used, vec![true]);
    }

    #[test]
    fn unrelated_pragma_does_not_suppress() {
        let src = "fn f() {\n  // lint:allow(D001): wrong rule\n  let t = std::time::Instant::now();\n}\n";
        let (a, pragma_used, _) = analyze_and_resolve("crates/x/src/a.rs", src, "");
        assert!(a.findings[0].suppressed.is_none());
        assert_eq!(pragma_used, vec![false]);
    }

    #[test]
    fn pragma_on_wrong_line_does_not_suppress() {
        let src = "// lint:allow(D002): too far away\nfn f() {\n\n  let t = std::time::Instant::now();\n}\n";
        let (a, pragma_used, _) = analyze_and_resolve("crates/x/src/a.rs", src, "");
        assert!(a.findings[0].suppressed.is_none());
        assert_eq!(pragma_used, vec![false]);
    }

    fn scan_one(rel: &str, src: &str, toml: &str) -> Scan {
        let (config, errs) = config::parse(toml);
        assert!(errs.is_empty(), "{errs:?}");
        scan_sources("/w", &[(rel.to_string(), src.to_string())], &config)
    }

    #[test]
    fn worker_reachable_unwrap_is_a_c002_with_chain() {
        let src = "fn root_fn(v: &[u32]) { helper(v); }\nfn helper(v: &[u32]) { let _ = v.first().unwrap(); }\nfn bystander(v: &[u32]) { let _ = v.first().unwrap(); }\n";
        let toml = "[roots]\nfn = \"root_fn\"\n";
        let scan = scan_one("crates/x/src/a.rs", src, toml);
        let c002: Vec<&Finding> = scan
            .report
            .findings
            .iter()
            .filter(|f| f.rule == "C002")
            .collect();
        assert_eq!(c002.len(), 1, "{:?}", scan.report.findings);
        assert_eq!(c002[0].line, 2);
        assert_eq!(c002[0].chain, vec!["root_fn", "helper"]);
        assert!(scan.callgraph_json.contains("\"root_fn\""));
    }

    #[test]
    fn c002_pragma_suppression_and_p002_audit() {
        let src = "fn root_fn(v: &[u32]) {\n  // lint:allow(C002): bounds checked by caller\n  let _ = v[0];\n}\n";
        let toml = "[roots]\nfn = \"root_fn\"\n";
        let scan = scan_one("crates/x/src/a.rs", src, toml);
        assert!(scan.report.is_clean(), "{:?}", scan.report.findings);
        let f = &scan.report.findings[0];
        assert_eq!(f.rule, "C002");
        assert!(matches!(f.suppressed, Some(Suppression::Pragma { .. })));
    }

    #[test]
    fn unmatched_root_is_p005() {
        let scan = scan_one(
            "crates/x/src/a.rs",
            "fn f() {}\n",
            "[roots]\nfn = \"NoSuch::fn_name\"\n",
        );
        let p005: Vec<&Finding> = scan
            .report
            .findings
            .iter()
            .filter(|f| f.rule == "P005")
            .collect();
        assert_eq!(p005.len(), 1);
        assert!(p005[0].message.contains("NoSuch::fn_name"));
    }

    #[test]
    fn d_rules_inside_workers_escalate_to_c001() {
        let src = "fn root_fn() { let t = std::time::Instant::now(); }\n";
        let toml = "[roots]\nfn = \"root_fn\"\n";
        let scan = scan_one("crates/x/src/a.rs", src, toml);
        let rules: Vec<&str> = scan
            .report
            .findings
            .iter()
            .map(|f| f.rule.as_str())
            .collect();
        assert!(rules.contains(&"D002"), "{rules:?}");
        assert!(rules.contains(&"C001"), "{rules:?}");
    }

    #[test]
    fn no_roots_means_no_c_findings() {
        let src = "fn f(v: &[u32]) { let _ = v[0]; }\n";
        let scan = scan_one("crates/x/src/a.rs", src, "");
        assert!(scan.report.is_clean(), "{:?}", scan.report.findings);
        assert!(scan.callgraph_json.contains("\"reachable\""));
    }
}
