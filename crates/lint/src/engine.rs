//! Orchestration: walk the workspace, run the rules, apply suppressions,
//! audit the suppressions themselves.

use std::fs;
use std::path::Path;

use crate::config::{self, Config};
use crate::lexer::lex;
use crate::pragma::{parse_pragmas, Pragma};
use crate::report::{Finding, Report, Suppression};
use crate::rules::{check_all, detect_test_spans, FileCtx};
use crate::walk::{is_test_path, rust_files};

/// Analysis of a single source text, before config-level suppression.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Rule findings (not yet suppression-resolved).
    pub findings: Vec<Finding>,
    /// Parsed pragmas (well-formed and malformed).
    pub pragmas: Vec<Pragma>,
}

/// Lexes and rule-checks one source text. `rel_path` decides path-scoped
/// rules (D005) and path-level test exemption; pass a `tests/`-free path
/// to treat fixture text as production code.
pub fn analyze_source(rel_path: &str, source: &str) -> FileAnalysis {
    let lexed = lex(source);
    let test_spans = detect_test_spans(&lexed);
    let ctx = FileCtx {
        rel_path,
        lexed: &lexed,
        test_spans: &test_spans,
        is_test_path: is_test_path(rel_path),
    };
    let findings = check_all(&ctx)
        .into_iter()
        .map(|raw| Finding {
            rule: raw.rule.to_string(),
            path: rel_path.to_string(),
            line: raw.line,
            message: raw.message,
            suppressed: None,
        })
        .collect();
    FileAnalysis {
        findings,
        pragmas: parse_pragmas(&lexed),
    }
}

/// Resolves suppressions for one file's findings in place. Returns, per
/// pragma, whether it suppressed at least one finding; config usage is
/// tracked in `config_used` (parallel to `config.allows`).
pub fn apply_suppressions(
    analysis: &mut FileAnalysis,
    config: &Config,
    config_used: &mut [bool],
) -> Vec<bool> {
    let mut pragma_used = vec![false; analysis.pragmas.len()];
    for f in &mut analysis.findings {
        // Pragmas win over the allowlist: they are closer to the code.
        for (pi, p) in analysis.pragmas.iter().enumerate() {
            if p.error.is_none()
                && p.target_line == Some(f.line)
                && p.rules.iter().any(|r| r == &f.rule)
            {
                f.suppressed = Some(Suppression::Pragma {
                    reason: p.reason.clone(),
                });
                pragma_used[pi] = true;
                break;
            }
        }
        if f.suppressed.is_some() {
            continue;
        }
        for (ai, a) in config.allows.iter().enumerate() {
            if a.covers(&f.path, &f.rule) {
                f.suppressed = Some(Suppression::Config {
                    path: a.path.clone(),
                    reason: a.reason.clone(),
                });
                config_used[ai] = true;
                break;
            }
        }
    }
    pragma_used
}

/// Runs the full scan over a workspace root. `lint.toml` at the root is
/// the (optional) allowlist.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let (config, config_errors) = match fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => config::parse(&text),
        Err(_) => (Config::default(), Vec::new()),
    };
    let mut report = Report {
        root: root.display().to_string(),
        files_scanned: 0,
        findings: Vec::new(),
    };
    for err in config_errors {
        report.findings.push(Finding {
            rule: "P004".into(),
            path: "lint.toml".into(),
            line: 0,
            message: err,
            suppressed: None,
        });
    }
    let mut config_used = vec![false; config.allows.len()];
    for rel in rust_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        report.files_scanned += 1;
        let mut analysis = analyze_source(&rel, &source);
        let pragma_used = apply_suppressions(&mut analysis, &config, &mut config_used);
        for (pi, p) in analysis.pragmas.iter().enumerate() {
            if let Some(err) = &p.error {
                report.findings.push(Finding {
                    rule: "P001".into(),
                    path: rel.clone(),
                    line: p.line,
                    message: format!("malformed pragma: {err}"),
                    suppressed: None,
                });
            } else if !pragma_used[pi] {
                report.findings.push(Finding {
                    rule: "P002".into(),
                    path: rel.clone(),
                    line: p.line,
                    message: format!(
                        "unused pragma `lint:allow({})` — the finding it excused is gone; \
                         remove it",
                        p.rules.join(", ")
                    ),
                    suppressed: None,
                });
            }
        }
        report.findings.append(&mut analysis.findings);
    }
    for (ai, used) in config_used.iter().enumerate() {
        if !used {
            let a = &config.allows[ai];
            report.findings.push(Finding {
                rule: "P003".into(),
                path: "lint.toml".into(),
                line: a.line,
                message: format!(
                    "unused [[allow]] for path `{}` rule {} — the findings it excused are \
                     gone; remove it",
                    a.path, a.rule
                ),
                suppressed: None,
            });
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_and_resolve(
        rel: &str,
        src: &str,
        toml: &str,
    ) -> (FileAnalysis, Vec<bool>, Vec<bool>) {
        let (config, errs) = config::parse(toml);
        assert!(errs.is_empty(), "{errs:?}");
        let mut analysis = analyze_source(rel, src);
        let mut config_used = vec![false; config.allows.len()];
        let pragma_used = apply_suppressions(&mut analysis, &config, &mut config_used);
        (analysis, pragma_used, config_used)
    }

    #[test]
    fn pragma_suppression_round_trip() {
        let src = "fn f() {\n  // lint:allow(D002): batch timing telemetry only\n  let t = std::time::Instant::now();\n}\n";
        let (a, pragma_used, _) = analyze_and_resolve("crates/x/src/a.rs", src, "");
        assert_eq!(a.findings.len(), 1);
        assert!(matches!(
            a.findings[0].suppressed,
            Some(Suppression::Pragma { .. })
        ));
        assert_eq!(pragma_used, vec![true]);
    }

    #[test]
    fn config_suppression_round_trip() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let toml = "[[allow]]\npath = \"crates/x\"\nrule = \"D002\"\nreason = \"demo timing\"\n";
        let (a, _, config_used) = analyze_and_resolve("crates/x/src/a.rs", src, toml);
        assert!(matches!(
            a.findings[0].suppressed,
            Some(Suppression::Config { .. })
        ));
        assert_eq!(config_used, vec![true]);
    }

    #[test]
    fn unrelated_pragma_does_not_suppress() {
        let src = "fn f() {\n  // lint:allow(D001): wrong rule\n  let t = std::time::Instant::now();\n}\n";
        let (a, pragma_used, _) = analyze_and_resolve("crates/x/src/a.rs", src, "");
        assert!(a.findings[0].suppressed.is_none());
        assert_eq!(pragma_used, vec![false]);
    }

    #[test]
    fn pragma_on_wrong_line_does_not_suppress() {
        let src = "// lint:allow(D002): too far away\nfn f() {\n\n  let t = std::time::Instant::now();\n}\n";
        let (a, pragma_used, _) = analyze_and_resolve("crates/x/src/a.rs", src, "");
        assert!(a.findings[0].suppressed.is_none());
        assert_eq!(pragma_used, vec![false]);
    }
}
