#![forbid(unsafe_code)]

//! The `mrvd-lint` binary: scan the workspace, print the report, exit
//! nonzero on any unsuppressed finding.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mrvd_lint::scan_workspace;

const USAGE: &str = "\
mrvd-lint — determinism static analysis over the MRVD workspace

USAGE:
    mrvd-lint [--root <dir>] [--format human|json] [--output <file>]
              [--callgraph <file>]

OPTIONS:
    --root <dir>       Workspace root (default: ascend from cwd to the
                       directory whose Cargo.toml declares [workspace])
    --format <fmt>     `human` (default) or `json`
    --output <file>    Also write the report (in the chosen format) there
    --callgraph <file> Write the call graph + worker-reachable set
                       (LINT_callgraph.json schema) there

EXIT CODE: 0 when lint-clean, 1 on unsuppressed findings, 2 on usage/IO
errors.";

fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("human");
    let mut output: Option<PathBuf> = None;
    let mut callgraph: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = "human".into(),
                Some("json") => format = "json".into(),
                _ => return usage_error("--format must be `human` or `json`"),
            },
            "--output" => match args.next() {
                Some(v) => output = Some(PathBuf::from(v)),
                None => return usage_error("--output needs a value"),
            },
            "--callgraph" => match args.next() {
                Some(v) => callgraph = Some(PathBuf::from(v)),
                None => return usage_error("--callgraph needs a value"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    let Some(root) = root.or_else(find_root) else {
        eprintln!("mrvd-lint: no workspace root found (pass --root)");
        return ExitCode::from(2);
    };
    let scan = match scan_workspace(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mrvd-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    let report = scan.report;
    let rendered = match format.as_str() {
        "json" => report.render_json(),
        _ => report.render_human(),
    };
    print!("{rendered}");
    if let Some(path) = output {
        if write_file(&path, &rendered).is_err() {
            return ExitCode::from(2);
        }
    }
    if let Some(path) = callgraph {
        if write_file(&path, &scan.callgraph_json).is_err() {
            return ExitCode::from(2);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("mrvd-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn write_file(path: &Path, content: &str) -> Result<(), ()> {
    if let Some(parent) = path.parent().filter(|p| *p != Path::new("")) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("mrvd-lint: cannot create {}: {e}", parent.display());
            return Err(());
        }
    }
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("mrvd-lint: cannot write {}: {e}", path.display());
        return Err(());
    }
    Ok(())
}
