//! Findings, the aggregate report, and its human / JSON renderings.
//!
//! JSON is emitted by hand: the linter is dependency-free by design (it
//! must never drag the code it audits — or the serde shim — into its own
//! build graph).

use std::collections::BTreeMap;

use crate::rules::rule_summary;

/// Schema version stamped into every JSON rendering. Bump when the
/// report shape changes so downstream consumers fail loudly instead of
/// mis-reading fields. Version history: 1 = flat D/P findings; 2 = adds
/// `schema_version` itself, call-graph C rules and per-finding `chain`.
pub const SCHEMA_VERSION: u32 = 2;

/// How a finding was suppressed, if it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Suppression {
    /// An inline `// lint:allow(rule): reason` pragma.
    Pragma {
        /// The pragma's justification text.
        reason: String,
    },
    /// A `lint.toml` `[[allow]]` entry.
    Config {
        /// The entry's path prefix.
        path: String,
        /// The entry's justification text.
        reason: String,
    },
}

/// One finding: a rule hit or a meta problem (malformed/unused
/// suppression, broken allowlist). Meta findings use `P00x` rule ids and
/// cannot themselves be suppressed.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`D001`…`D007`, or `P001` malformed pragma, `P002` unused
    /// pragma, `P003` unused lint.toml allow, `P004` lint.toml error).
    pub rule: String,
    /// Workspace-relative file path (empty for config-level findings).
    pub path: String,
    /// 1-based line (0 for config-level findings).
    pub line: u32,
    /// What happened.
    pub message: String,
    /// `Some` when suppressed, with the audit trail.
    pub suppressed: Option<Suppression>,
    /// For worker-reachability (C-rule) findings: the call chain from a
    /// declared parallel root to the fn containing the finding, as
    /// qualified fn names. Empty for flat rules.
    pub chain: Vec<String>,
}

/// The aggregate result of one workspace scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Workspace root the scan ran over (display only).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, suppressed or not, in (path, line, rule) order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings that gate the build.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Number of gating findings.
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Whether the scan is clean.
    pub fn is_clean(&self) -> bool {
        self.unsuppressed_count() == 0
    }

    /// Per-rule `(total, suppressed)` counts, sorted by rule id.
    pub fn per_rule(&self) -> BTreeMap<String, (usize, usize)> {
        let mut map: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for f in &self.findings {
            let e = map.entry(f.rule.clone()).or_default();
            e.0 += 1;
            if f.suppressed.is_some() {
                e.1 += 1;
            }
        }
        map
    }

    /// Human-readable rendering.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in self.unsuppressed() {
            if f.path.is_empty() {
                out.push_str(&format!("{}: {}\n", f.rule, f.message));
            } else {
                out.push_str(&format!(
                    "{}:{}: {} {}\n",
                    f.path, f.line, f.rule, f.message
                ));
            }
            if !f.chain.is_empty() {
                out.push_str(&format!("    via {}\n", f.chain.join(" -> ")));
            }
        }
        out.push_str(&format!(
            "\n{} files scanned, {} finding(s), {} suppressed, {} gating\n",
            self.files_scanned,
            self.findings.len(),
            self.findings.len() - self.unsuppressed_count(),
            self.unsuppressed_count(),
        ));
        for (rule, (total, suppressed)) in self.per_rule() {
            out.push_str(&format!(
                "  {rule} ({}): {total} total, {suppressed} suppressed\n",
                rule_summary(&rule),
            ));
        }
        if self.is_clean() {
            out.push_str("lint-clean: every finding carries a reasoned suppression\n");
        }
        out
    }

    /// JSON rendering (stable key order, findings in report order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!("  \"root\": {},\n", json_str(&self.root)));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"gating\": {},\n", self.unsuppressed_count()));
        out.push_str("  \"per_rule\": {");
        let per_rule = self.per_rule();
        let mut first = true;
        for (rule, (total, suppressed)) in &per_rule {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {{\"total\": {total}, \"suppressed\": {suppressed}}}",
                json_str(rule)
            ));
        }
        out.push_str(if per_rule.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(&f.rule)));
            out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
            if !f.chain.is_empty() {
                let links: Vec<String> = f.chain.iter().map(|c| json_str(c)).collect();
                out.push_str(&format!("\"chain\": [{}], ", links.join(", ")));
            }
            match &f.suppressed {
                None => out.push_str("\"suppressed\": null}"),
                Some(Suppression::Pragma { reason }) => out.push_str(&format!(
                    "\"suppressed\": {{\"by\": \"pragma\", \"reason\": {}}}}}",
                    json_str(reason)
                )),
                Some(Suppression::Config { path, reason }) => out.push_str(&format!(
                    "\"suppressed\": {{\"by\": \"lint.toml\", \"path\": {}, \"reason\": {}}}}}",
                    json_str(path),
                    json_str(reason)
                )),
            }
        }
        out.push_str(if self.findings.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str(&format!("  \"clean\": {}\n}}\n", self.is_clean()));
        out
    }
}

/// Minimal JSON string escaping.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            root: "/w".into(),
            files_scanned: 2,
            findings: vec![
                Finding {
                    rule: "D002".into(),
                    path: "crates/sim/src/engine.rs".into(),
                    line: 594,
                    message: "wall clock".into(),
                    suppressed: Some(Suppression::Pragma {
                        reason: "telemetry".into(),
                    }),
                    chain: vec![],
                },
                Finding {
                    rule: "D001".into(),
                    path: "crates/x/src/a.rs".into(),
                    line: 3,
                    message: "hash \"iteration\"".into(),
                    suppressed: None,
                    chain: vec![],
                },
                Finding {
                    rule: "C002".into(),
                    path: "crates/sim/src/parallel.rs".into(),
                    line: 120,
                    message: "panic-capable `.unwrap()`".into(),
                    suppressed: None,
                    chain: vec!["ShardSlots::drain_worker".into(), "relock".into()],
                },
            ],
        }
    }

    #[test]
    fn counts_and_cleanliness() {
        let r = sample();
        assert_eq!(r.unsuppressed_count(), 2);
        assert!(!r.is_clean());
        assert_eq!(r.per_rule()["D002"], (1, 1));
        assert_eq!(r.per_rule()["D001"], (1, 0));
        assert_eq!(r.per_rule()["C002"], (1, 0));
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let j = sample().render_json();
        assert!(j.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(j.contains("\"gating\": 2"));
        assert!(j.contains("hash \\\"iteration\\\""));
        assert!(j.contains("\"by\": \"pragma\""));
        assert!(j.contains("\"chain\": [\"ShardSlots::drain_worker\", \"relock\"]"));
        assert!(j.contains("\"clean\": false"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn human_rendering_shows_chains() {
        let h = sample().render_human();
        assert!(h.contains("via ShardSlots::drain_worker -> relock"));
    }

    #[test]
    fn empty_report_renders() {
        let r = Report {
            root: "/w".into(),
            files_scanned: 0,
            findings: vec![],
        };
        assert!(r.is_clean());
        let j = r.render_json();
        assert!(j.contains("\"findings\": [],"));
        assert!(j.contains("\"clean\": true"));
        assert!(r.render_human().contains("lint-clean"));
    }
}
