//! Deterministic workspace file discovery.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "results", "node_modules"];

/// Path suffixes (relative, forward slashes) excluded from the scan: the
/// linter's own violation fixtures *must* contain findings.
const SKIP_SUFFIXES: [&str; 1] = ["crates/lint/fixtures"];

/// Collects every `.rs` file under `root`, workspace-relative with
/// forward slashes, in a deterministic (sorted) order.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || SKIP_SUFFIXES.iter().any(|s| rel.ends_with(s)) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// `path` relative to `root`, forward slashes.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Whether a workspace-relative path is test/bench code by location.
pub fn is_test_path(rel: &str) -> bool {
    rel.split('/').any(|c| c == "tests" || c == "benches")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_paths_are_recognized() {
        assert!(is_test_path("tests/lint_clean.rs"));
        assert!(is_test_path("crates/scenario/tests/determinism.rs"));
        assert!(is_test_path("crates/bench/benches/batch_views.rs"));
        assert!(!is_test_path("crates/sim/src/engine.rs"));
        assert!(!is_test_path("examples/custom_policy.rs"));
    }

    #[test]
    fn walks_the_workspace_deterministically_and_skips_fixtures() {
        // Walk the real workspace root: the skip suffixes are expressed
        // workspace-relative, so this is the tree they protect.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let a = rust_files(&root).unwrap();
        let b = rust_files(&root).unwrap();
        assert_eq!(a, b);
        assert!(a.iter().any(|p| p == "crates/lint/src/lexer.rs"));
        assert!(a.iter().all(|p| !p.contains("crates/lint/fixtures/")));
        assert!(a.iter().all(|p| !p.starts_with("target/")));
    }
}
