//! Inline suppression pragmas.
//!
//! Syntax: `// lint:allow(D001): reason text` — one or more comma-separated
//! rule ids, a colon, and a **mandatory** non-empty reason. The marker
//! must start the comment (prose that merely *mentions* the syntax, like
//! this paragraph, is not a pragma). A trailing pragma suppresses
//! findings on its own line; a standalone pragma suppresses findings on
//! the next code line. Malformed pragmas (missing reason, unknown rule)
//! and pragmas that suppress nothing are themselves reported —
//! suppression must stay auditable.

use crate::lexer::Lexed;
use crate::rules::is_known_rule;

/// A parsed (or malformed) suppression pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rules this pragma suppresses.
    pub rules: Vec<String>,
    /// The justification text (always non-empty when well-formed).
    pub reason: String,
    /// Line the pragma comment starts on.
    pub line: u32,
    /// The code line it applies to (`None` when no code follows).
    pub target_line: Option<u32>,
    /// Parse/validation error, if any.
    pub error: Option<String>,
}

/// The marker every pragma starts with.
pub const PRAGMA_MARKER: &str = "lint:allow(";

/// Extracts every pragma from a file's comments.
pub fn parse_pragmas(lexed: &Lexed) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(rest) = c.text.strip_prefix(PRAGMA_MARKER) else {
            continue;
        };
        let target_line = lexed.next_code_line(c.line);
        let mut pragma = Pragma {
            rules: Vec::new(),
            reason: String::new(),
            line: c.line,
            target_line,
            error: None,
        };
        let Some(close) = rest.find(')') else {
            pragma.error = Some("unclosed rule list — expected `lint:allow(RULE): reason`".into());
            out.push(pragma);
            continue;
        };
        for rule in rest[..close].split(',') {
            let rule = rule.trim().to_string();
            if rule.is_empty() {
                pragma.error = Some("empty rule id in `lint:allow(…)`".into());
            } else if !is_known_rule(&rule) {
                pragma.error = Some(format!("unknown rule `{rule}` in `lint:allow(…)`"));
            }
            pragma.rules.push(rule);
        }
        if pragma.rules.is_empty() {
            pragma.error = Some("empty rule list in `lint:allow(…)`".into());
        }
        let after = rest[close + 1..].trim_start();
        if let Some(reason) = after.strip_prefix(':') {
            pragma.reason = reason.trim().to_string();
        }
        if pragma.reason.is_empty() && pragma.error.is_none() {
            pragma.error = Some("missing reason — every suppression needs `): reason text`".into());
        }
        out.push(pragma);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_well_formed_pragmas() {
        let src = "// lint:allow(D002): telemetry only, never feeds results\nlet t = now();\n";
        let p = parse_pragmas(&lex(src));
        assert_eq!(p.len(), 1);
        assert!(p[0].error.is_none(), "{:?}", p[0].error);
        assert_eq!(p[0].rules, vec!["D002"]);
        assert_eq!(p[0].reason, "telemetry only, never feeds results");
        assert_eq!(p[0].target_line, Some(2));
    }

    #[test]
    fn trailing_pragma_targets_its_own_line() {
        let src = "let t = now(); // lint:allow(D002): timing telemetry\n";
        let p = parse_pragmas(&lex(src));
        assert_eq!(p[0].target_line, Some(1));
    }

    #[test]
    fn multi_rule_pragmas() {
        let src = "// lint:allow(D001, D004): both are provably order-free here\nx();\n";
        let p = parse_pragmas(&lex(src));
        assert!(p[0].error.is_none());
        assert_eq!(p[0].rules, vec!["D001", "D004"]);
    }

    #[test]
    fn missing_reason_is_an_error() {
        for src in [
            "// lint:allow(D001)\nx();\n",
            "// lint:allow(D001):\nx();\n",
            "// lint:allow(D001):   \nx();\n",
        ] {
            let p = parse_pragmas(&lex(src));
            assert!(p[0].error.is_some(), "src {src:?} should be malformed");
        }
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let p = parse_pragmas(&lex("// lint:allow(D999): nope\nx();\n"));
        assert!(p[0].error.as_deref().unwrap().contains("D999"));
    }

    #[test]
    fn pragma_with_no_following_code_has_no_target() {
        let p = parse_pragmas(&lex("x();\n// lint:allow(D001): dangling\n"));
        assert_eq!(p[0].target_line, None);
    }
}
