//! A small but correct Rust lexer.
//!
//! The rule engine does not need a parser — every determinism pattern it
//! recognizes is a short token sequence — but it *does* need the token
//! stream to be right: a `HashMap` inside a string literal, a `//` inside
//! a raw string, or an `unsafe` inside a nested block comment must not
//! produce findings. This lexer therefore handles exactly the lexical
//! subtleties that matter for that guarantee:
//!
//! * line comments (incl. doc comments) and **nested** block comments;
//! * string literals with escapes, byte strings, and raw (byte) strings
//!   with arbitrary `#` fences;
//! * char literals vs lifetimes (`'a'` vs `<'a>`), incl. escaped chars;
//! * numeric literals (decimal, float, exponent, hex/octal/binary,
//!   `_` separators, type suffixes) without eating `..` range operators;
//! * `::` and `->` joined into single punctuation tokens so rules can
//!   match paths and tell `::` apart from a type-ascription `:`.
//!
//! Everything is positioned (1-based line, column) so findings and
//! suppression pragmas can be tied to source lines.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `as`, `unsafe`, …).
    Ident,
    /// String literal of any flavor (plain, byte, raw) — text is the
    /// literal *contents* (fences and quotes stripped).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`) — text includes the leading `'`.
    Lifetime,
    /// Numeric literal, suffix included (`1_000`, `0.5`, `10u32`).
    Number,
    /// Punctuation: single chars, plus the joined `::` and `->`.
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for what is included).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in chars).
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// One comment (line or block) with its source position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text *without* the `//` / `/* */` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Whether any code token precedes the comment on its start line
    /// (a trailing comment annotates its own line; a standalone comment
    /// annotates the next code line).
    pub trailing: bool,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Whether any code token sits on `line`.
    pub fn line_has_code(&self, line: u32) -> bool {
        // Token lines are non-decreasing: binary search for the line.
        self.tokens.binary_search_by(|t| t.line.cmp(&line)).is_ok()
    }

    /// First code line at or after `line`, if any.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        let i = self.tokens.partition_point(|t| t.line < line);
        self.tokens.get(i).map(|t| t.line)
    }
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Unterminated literals and
/// comments are tolerated (the remainder of the file becomes the
/// literal/comment): a linter must never panic on the code it audits.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek_at(1) == Some('/') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            push_comment(&mut out, text, line);
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            let mut text = String::new();
            while depth > 0 {
                match (cur.peek(), cur.peek_at(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push_str("/*");
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                        if depth > 0 {
                            text.push_str("*/");
                        }
                    }
                    (Some(ch), _) => {
                        text.push(ch);
                        cur.bump();
                    }
                    (None, _) => break, // unterminated: tolerate
                }
            }
            push_comment(&mut out, text, line);
            continue;
        }
        // Raw / byte string prefixes: r", r#", b", br", br#", b'.
        if is_ident_start(c) {
            let mut ident = String::new();
            let mut j = 0usize;
            while let Some(ch) = cur.peek_at(j) {
                if is_ident_continue(ch) {
                    ident.push(ch);
                    j += 1;
                } else {
                    break;
                }
            }
            let next = cur.peek_at(j);
            let raw_prefix =
                matches!(ident.as_str(), "r" | "br") && matches!(next, Some('"') | Some('#'));
            let byte_str = ident == "b" && next == Some('"');
            let byte_char = ident == "b" && next == Some('\'');
            if raw_prefix {
                for _ in 0..j {
                    cur.bump();
                }
                lex_raw_string(&mut cur, &mut out, line, col);
                continue;
            }
            if byte_str {
                cur.bump(); // b
                lex_string(&mut cur, &mut out, line, col);
                continue;
            }
            if byte_char {
                cur.bump(); // b
                cur.bump(); // '
                lex_char_body(&mut cur, &mut out, line, col);
                continue;
            }
            for _ in 0..j {
                cur.bump();
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text: ident,
                line,
                col,
            });
            continue;
        }
        if c == '"' {
            lex_string(&mut cur, &mut out, line, col);
            continue;
        }
        if c == '\'' {
            lex_quote(&mut cur, &mut out, line, col);
            continue;
        }
        if c.is_ascii_digit() {
            lex_number(&mut cur, &mut out, line, col);
            continue;
        }
        // Punctuation; join `::` and `->`.
        cur.bump();
        let text = if c == ':' && cur.peek() == Some(':') {
            cur.bump();
            "::".to_string()
        } else if c == '-' && cur.peek() == Some('>') {
            cur.bump();
            "->".to_string()
        } else {
            c.to_string()
        };
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text,
            line,
            col,
        });
    }
    out
}

fn push_comment(out: &mut Lexed, text: String, line: u32) {
    let trailing = out.tokens.last().is_some_and(|t| t.line == line);
    out.comments.push(Comment {
        text: text.trim().to_string(),
        line,
        trailing,
    });
}

fn lex_string(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    cur.bump(); // opening quote
    let mut text = String::new();
    while let Some(ch) = cur.peek() {
        if ch == '\\' {
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push('\\');
                text.push(esc);
            }
            continue;
        }
        if ch == '"' {
            cur.bump();
            break;
        }
        text.push(ch);
        cur.bump();
    }
    out.tokens.push(Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    });
}

fn lex_raw_string(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some('"') {
        // `r#foo` raw identifier, not a raw string: emit the ident.
        let mut text = String::new();
        while let Some(ch) = cur.peek() {
            if is_ident_continue(ch) {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        out.tokens.push(Token {
            kind: TokenKind::Ident,
            text,
            line,
            col,
        });
        return;
    }
    cur.bump(); // opening quote
    let mut text = String::new();
    'scan: while let Some(ch) = cur.peek() {
        if ch == '"' {
            // Close only when followed by `hashes` hash marks.
            let mut ok = true;
            for k in 0..hashes {
                if cur.peek_at(1 + k) != Some('#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                cur.bump();
                for _ in 0..hashes {
                    cur.bump();
                }
                break 'scan;
            }
        }
        text.push(ch);
        cur.bump();
    }
    out.tokens.push(Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    });
}

/// After a `'`: disambiguate char literal vs lifetime.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    cur.bump(); // '
    match cur.peek() {
        Some('\\') => lex_char_body(cur, out, line, col),
        Some(c1) if is_ident_start(c1) => {
            // `'a'` is a char; `'a` / `'static` is a lifetime. The char
            // after c1 decides: a closing quote means char literal.
            if cur.peek_at(1) == Some('\'') {
                lex_char_body(cur, out, line, col);
            } else {
                let mut text = String::from("'");
                while let Some(ch) = cur.peek() {
                    if is_ident_continue(ch) {
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line,
                    col,
                });
            }
        }
        _ => lex_char_body(cur, out, line, col),
    }
}

/// Consumes the body of a char literal up to and including the closing
/// quote; the opening quote is already consumed.
fn lex_char_body(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    while let Some(ch) = cur.peek() {
        if ch == '\\' {
            cur.bump();
            text.push('\\');
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        if ch == '\'' {
            cur.bump();
            break;
        }
        if ch == '\n' {
            break; // malformed: tolerate
        }
        text.push(ch);
        cur.bump();
    }
    out.tokens.push(Token {
        kind: TokenKind::Char,
        text,
        line,
        col,
    });
}

fn lex_number(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let mut text = String::new();
    // Hex / octal / binary.
    if cur.peek() == Some('0') && matches!(cur.peek_at(1), Some('x') | Some('o') | Some('b')) {
        text.push(cur.bump().unwrap());
        text.push(cur.bump().unwrap());
        while let Some(ch) = cur.peek() {
            if ch.is_ascii_alphanumeric() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
    } else {
        while let Some(ch) = cur.peek() {
            if ch.is_ascii_digit() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        // Fractional part — but never eat a `..` range operator.
        if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            cur.bump();
            while let Some(ch) = cur.peek() {
                if ch.is_ascii_digit() || ch == '_' {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(), Some('e') | Some('E'))
            && (cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(cur.peek_at(1), Some('+') | Some('-'))
                    && cur.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
        {
            text.push(cur.bump().unwrap());
            if matches!(cur.peek(), Some('+') | Some('-')) {
                text.push(cur.bump().unwrap());
            }
            while let Some(ch) = cur.peek() {
                if ch.is_ascii_digit() || ch == '_' {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
        // Type suffix (`u32`, `f64`, …).
        while let Some(ch) = cur.peek() {
            if is_ident_continue(ch) {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
    }
    out.tokens.push(Token {
        kind: TokenKind::Number,
        text,
        line,
        col,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn line_and_block_comments() {
        let l = lex("let a = 1; // trailing note\n/* block */ let b = 2;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, "trailing note");
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
        assert!(idents("let a = 1; // HashMap\n")
            .iter()
            .all(|i| i != "HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
        assert_eq!(idents("/* /* */ unsafe */ ok"), vec!["ok"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(
            idents(r#"let s = "unsafe HashMap"; done"#),
            vec!["let", "s", "done"]
        );
        // Escaped quote does not close the string.
        assert_eq!(
            idents(r#"let s = "a\"unsafe"; done"#),
            vec!["let", "s", "done"]
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let s = r#"quote " inside unsafe"#; done"###);
        let strs: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("quote \" inside"));
        assert!(idents(r###"let s = r#"unsafe"#; done"###)
            .iter()
            .all(|i| i != "unsafe"));
        // Zero-hash raw string and byte-string prefixes.
        assert_eq!(
            idents(r#"let s = r"x // y"; done"#),
            vec!["let", "s", "done"]
        );
        assert_eq!(
            idents(r#"let s = b"bytes"; done"#),
            vec!["let", "s", "done"]
        );
        // br with fences.
        assert_eq!(
            idents(r###"let s = br#"b " b"#; done"###),
            vec!["let", "s", "done"]
        );
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
    }

    #[test]
    fn chars_vs_lifetimes() {
        let l =
            lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let s: &'static str = \"\"; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["x", "\\'"]);
        // A char containing a quote-adjacent ident char: 'a' vs '_'.
        let l2 = lex("let u = '_';");
        assert_eq!(
            l2.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn byte_char_literal() {
        let l = lex("let c = b'x'; done");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
        assert!(idents("let c = b'x'; done").contains(&"done".to_string()));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..n_regions { let x = 1.5e-3; let y = 1_000u32; }");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "1.5e-3", "1_000u32"]);
        assert!(l.tokens.iter().any(|t| t.is_punct(".")));
        // Hex and a plain float.
        let l2 = lex("0xFF_u64 40.755");
        let nums2: Vec<_> = l2.tokens.iter().map(|t| t.text.clone()).collect();
        assert_eq!(nums2, vec!["0xFF_u64", "40.755"]);
    }

    #[test]
    fn path_and_arrow_puncts_are_joined() {
        let l = lex("fn f() -> std::time::Instant { Instant::now() }");
        assert!(l.tokens.iter().any(|t| t.is_punct("->")));
        assert_eq!(l.tokens.iter().filter(|t| t.is_punct("::")).count(), 3);
        // Type ascription `:` stays single.
        let l2 = lex("let x: u32 = 0;");
        assert!(l2.tokens.iter().any(|t| t.is_punct(":")));
        assert!(!l2.tokens.iter().any(|t| t.is_punct("::")));
    }

    #[test]
    fn positions_are_tracked() {
        let l = lex("a\n  bb\n");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_constructs_are_tolerated() {
        lex("let s = \"never closed");
        lex("/* never closed");
        lex("let c = 'x");
        let l = lex("r#\"never closed");
        assert_eq!(l.tokens.len(), 1);
    }
}
