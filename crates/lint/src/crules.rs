//! The C-rule family: parallel-purity checks over the worker-reachable
//! closure.
//!
//! PR 9's parallel shard drain is byte-identical only while nothing a
//! worker thread can reach consults ambient order, panics mid-barrier,
//! or mutates shared state outside the sanctioned `Mutex`/atomic
//! protocol. These rules enforce that contract over the closure
//! computed by [`crate::reach`] from the `lint.toml [roots]`:
//!
//! | rule | pattern |
//! |------|---------|
//! | C001 | a D001–D003/D007 hit inside a worker-reachable fn (errors even where a `lint.toml` path exemption would cover the D-rule) |
//! | C002 | panic-capable site in a worker-reachable fn: `unwrap`/`expect`, `panic!`-family macros, slice indexing, narrowing integer `as` casts |
//! | C003 | interior mutability (`RefCell`/`Cell`/`UnsafeCell`/`OnceCell`/`LazyCell`) in a worker-reachable fn, or `static mut`/`thread_local!` in a file with worker-reachable code |
//! | C004 | atomic op without an explicit `Ordering::…` argument |
//! | C005 | thread spawn outside the sanctioned pool module(s) (`[roots] spawn_path`) |
//!
//! Every reachability-scoped finding carries the call chain
//! (root → … → containing fn). C-rule findings can only be waived by an
//! inline `// lint:allow(C00x): reason` pragma — `lint.toml` path
//! entries do not apply, so a waiver is always visible at the site it
//! excuses.

use crate::lexer::{Lexed, Token, TokenKind};
use crate::rules::{check_all, FileCtx};

/// Integer targets an `as` cast can narrow into.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Panic-family macros (assertions excluded: `debug_assert!` compiles
/// out in release and `assert!` states an invariant, not a code path).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Interior-mutability type names (C003). `Mutex`/`RwLock`/`Atomic*`
/// are the sanctioned protocol and excluded by design.
const INTERIOR_MUT: [&str; 5] = ["RefCell", "Cell", "UnsafeCell", "OnceCell", "LazyCell"];

/// Atomic method names that always take an `Ordering` argument.
fn is_atomic_strong(name: &str) -> bool {
    name.starts_with("fetch_") || name.starts_with("compare_exchange")
}

/// Atomic method names shared with non-atomic std types — these need
/// receiver evidence before C004 applies.
const ATOMIC_WEAK: [&str; 3] = ["load", "store", "swap"];

/// Explicit-ordering evidence inside an argument list.
const ORDERINGS: [&str; 6] = [
    "Ordering", "Relaxed", "Acquire", "Release", "AcqRel", "SeqCst",
];

/// One fn's span in a file, with its reachability verdict and chain.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// First line of the fn.
    pub line: u32,
    /// Last line of the body.
    pub end_line: u32,
    /// Whether the fn is worker-reachable.
    pub reachable: bool,
    /// Call chain root → … → this fn (qualified names; empty when not
    /// reachable).
    pub chain: Vec<String>,
}

/// Context for the C-rule pass over one file.
pub struct CRuleCtx<'a> {
    /// Workspace-relative path.
    pub rel_path: &'a str,
    /// Lexed source.
    pub lexed: &'a Lexed,
    /// Test line spans.
    pub test_spans: &'a [(u32, u32)],
    /// Whether the file is test code by path.
    pub is_test_path: bool,
    /// Every fn span in this file (reachable or not), so sites inside a
    /// nested non-reachable fn are not charged to the enclosing one.
    pub fn_spans: &'a [FnSpan],
    /// Whether any `[roots]` were declared (C005 is meaningless without
    /// a sanctioned-pool declaration).
    pub has_roots: bool,
    /// Path prefixes where spawning threads is sanctioned.
    pub spawn_ok: &'a [String],
}

/// A C-rule hit, pre-suppression.
#[derive(Debug, Clone)]
pub struct CFinding {
    /// Rule id (`C001` … `C005`).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// What happened.
    pub message: String,
    /// Call chain root → … → containing fn (empty for C005).
    pub chain: Vec<String>,
}

impl CRuleCtx<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.is_test_path || self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// The innermost fn span containing `line`, when that fn is
    /// worker-reachable: returns its chain.
    fn reachable_chain(&self, line: u32) -> Option<&[String]> {
        self.fn_spans
            .iter()
            .filter(|s| s.line <= line && line <= s.end_line)
            .max_by_key(|s| s.line)
            .filter(|s| s.reachable)
            .map(|s| s.chain.as_slice())
    }

    fn any_reachable(&self) -> bool {
        self.fn_spans.iter().any(|s| s.reachable)
    }
}

/// Run C001–C005 over one file.
pub fn check_file(ctx: &CRuleCtx<'_>) -> Vec<CFinding> {
    let mut out = Vec::new();
    check_c001(ctx, &mut out);
    check_c002(ctx, &mut out);
    check_c003(ctx, &mut out);
    check_c004(ctx, &mut out);
    check_c005(ctx, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn push(out: &mut Vec<CFinding>, rule: &'static str, line: u32, message: String, chain: &[String]) {
    out.push(CFinding {
        rule,
        line,
        message,
        chain: chain.to_vec(),
    });
}

/// C001 — D001/D002/D003/D007 hits inside worker-reachable fns become
/// their own findings, immune to `lint.toml` path exemptions.
fn check_c001(ctx: &CRuleCtx<'_>, out: &mut Vec<CFinding>) {
    if !ctx.any_reachable() {
        return;
    }
    // Re-run the order/clock/RNG/debug-format rules with the path
    // exemption off — worker-reachable code gets no path passes.
    let dctx = FileCtx {
        rel_path: ctx.rel_path,
        lexed: ctx.lexed,
        test_spans: ctx.test_spans,
        is_test_path: false,
    };
    for raw in check_all(&dctx) {
        if !matches!(raw.rule, "D001" | "D002" | "D003" | "D007") {
            continue;
        }
        if let Some(chain) = ctx.reachable_chain(raw.line) {
            push(
                out,
                "C001",
                raw.line,
                format!("worker-reachable {} violation: {}", raw.rule, raw.message),
                chain,
            );
        }
    }
}

/// C002 — panic-capable sites in worker-reachable fns: a worker panic
/// poisons the barrier and deadlocks or aborts the drain.
fn check_c002(ctx: &CRuleCtx<'_>, out: &mut Vec<CFinding>) {
    if !ctx.any_reachable() {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if ctx.in_test(t.line) {
            continue;
        }
        // `.unwrap()` / `.expect(…)`.
        if t.is_punct(".")
            && i + 2 < toks.len()
            && (toks[i + 1].is_ident("unwrap") || toks[i + 1].is_ident("expect"))
            && toks[i + 2].is_punct("(")
        {
            if let Some(chain) = ctx.reachable_chain(toks[i + 1].line) {
                push(
                    out,
                    "C002",
                    toks[i + 1].line,
                    format!(
                        "`.{}()` can panic on a worker thread; handle the None/Err \
                         or justify why it is unreachable",
                        toks[i + 1].text
                    ),
                    chain,
                );
            }
        }
        // `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("!")
        {
            if let Some(chain) = ctx.reachable_chain(t.line) {
                push(
                    out,
                    "C002",
                    t.line,
                    format!("`{}!` panics on a worker thread", t.text),
                    chain,
                );
            }
        }
        // Slice indexing `expr[…]` (panics out of bounds).
        if t.is_punct("[") && i > 0 && is_index_receiver(&toks[i - 1]) {
            if let Some(chain) = ctx.reachable_chain(t.line) {
                push(
                    out,
                    "C002",
                    t.line,
                    format!(
                        "slice index `{}[…]` can panic out of bounds on a worker \
                         thread; use `get` or justify the bound",
                        toks[i - 1].text
                    ),
                    chain,
                );
            }
        }
        // Narrowing `as` casts (silent truncation corrupts shard math).
        if t.is_ident("as")
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokenKind::Ident
            && NARROW_INTS.contains(&toks[i + 1].text.as_str())
        {
            if let Some(chain) = ctx.reachable_chain(t.line) {
                push(
                    out,
                    "C002",
                    t.line,
                    format!(
                        "narrowing `as {}` cast in worker-reachable code can truncate \
                         silently; use `try_from` or justify the range",
                        toks[i + 1].text
                    ),
                    chain,
                );
            }
        }
    }
}

/// Whether the token before `[` makes it an index expression rather
/// than an array literal / attribute / type.
fn is_index_receiver(prev: &Token) -> bool {
    match prev.kind {
        TokenKind::Ident => !is_expr_keyword_before_bracket(&prev.text),
        TokenKind::Punct => prev.text == "]" || prev.text == ")",
        _ => false,
    }
}

/// Idents that precede an array-literal `[` rather than an index
/// (`return [a, b]`, `in [1, 2]`, …).
pub(crate) fn is_expr_keyword_before_bracket(s: &str) -> bool {
    matches!(
        s,
        "return" | "in" | "as" | "else" | "match" | "if" | "mut" | "move" | "break" | "let"
    )
}

/// C003 — interior mutability in worker-reachable fns; `static mut` /
/// `thread_local!` anywhere in a file with worker-reachable code.
fn check_c003(ctx: &CRuleCtx<'_>, out: &mut Vec<CFinding>) {
    if !ctx.any_reachable() {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || ctx.in_test(t.line) {
            continue;
        }
        if INTERIOR_MUT.contains(&t.text.as_str()) {
            if let Some(chain) = ctx.reachable_chain(t.line) {
                push(
                    out,
                    "C003",
                    t.line,
                    format!(
                        "`{}` is unsynchronized interior mutability in worker-reachable \
                         code; use the sanctioned Mutex/atomic protocol",
                        t.text
                    ),
                    chain,
                );
            }
            continue;
        }
        let module_level_hit = if t.text == "static"
            && i + 1 < toks.len()
            && toks[i + 1].is_ident("mut")
        {
            Some("`static mut` shared state in a file with worker-reachable code")
        } else if t.text == "thread_local" && i + 1 < toks.len() && toks[i + 1].is_punct("!") {
            Some("`thread_local!` state in a file with worker-reachable code diverges per worker")
        } else {
            None
        };
        if let Some(msg) = module_level_hit {
            let chain = ctx.reachable_chain(t.line).unwrap_or(&[]);
            push(out, "C003", t.line, msg.to_string(), chain);
        }
    }
}

/// Collects identifiers bound to `Atomic*` types in this file (lets,
/// fields, params) — the receiver evidence for C004's `load`/`store`/
/// `swap` patterns, mirroring `collect_hash_names`.
fn collect_atomic_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || !t.text.starts_with("Atomic") {
            continue;
        }
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 12 {
            j -= 1;
            steps += 1;
            let tj = &toks[j];
            if tj.is_punct(";") || tj.is_punct("{") || tj.is_punct("}") || tj.is_punct(",") {
                break;
            }
            if tj.is_punct(":") || tj.is_punct("=") {
                if j > 0 && toks[j - 1].kind == TokenKind::Ident {
                    let name = toks[j - 1].text.clone();
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
                break;
            }
        }
    }
    names
}

/// C004 — atomic operations must spell their `Ordering` at the call
/// site (a variable ordering hides the protocol from review).
fn check_c004(ctx: &CRuleCtx<'_>, out: &mut Vec<CFinding>) {
    if !ctx.any_reachable() {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let atomic_names = collect_atomic_names(toks);
    for i in 0..toks.len() {
        if !toks[i].is_punct(".") || i + 2 >= toks.len() {
            continue;
        }
        let m = &toks[i + 1];
        if m.kind != TokenKind::Ident || !toks[i + 2].is_punct("(") || ctx.in_test(m.line) {
            continue;
        }
        let strong = is_atomic_strong(&m.text);
        let weak = ATOMIC_WEAK.contains(&m.text.as_str());
        if !strong && !weak {
            continue;
        }
        if weak && !atomic_receiver(toks, i, &atomic_names) {
            continue; // `vec.swap(a, b)`, serde `load`, … — not atomic
        }
        // Scan the argument list for explicit ordering evidence.
        let mut depth = 1i32;
        let mut j = i + 3;
        let mut documented = false;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct("(") {
                depth += 1;
            } else if toks[j].is_punct(")") {
                depth -= 1;
            } else if toks[j].kind == TokenKind::Ident && ORDERINGS.contains(&toks[j].text.as_str())
            {
                documented = true;
            }
            j += 1;
        }
        if !documented {
            if let Some(chain) = ctx.reachable_chain(m.line) {
                push(
                    out,
                    "C004",
                    m.line,
                    format!(
                        "atomic `.{}(…)` without an explicit `Ordering::…` argument; \
                         spell the ordering at the call site",
                        m.text
                    ),
                    chain,
                );
            }
        }
    }
}

/// Whether the `.` at `dot` has an atomic-typed receiver (by collected
/// binding names, walking back over one optional `[…]` index).
fn atomic_receiver(toks: &[Token], dot: usize, atomic_names: &[String]) -> bool {
    if dot == 0 {
        return false;
    }
    let mut k = dot - 1;
    if toks[k].is_punct("]") {
        // Walk back over the index to the ident before `[`.
        let mut depth = 0i32;
        loop {
            if toks[k].is_punct("]") {
                depth += 1;
            } else if toks[k].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return false;
            }
            k -= 1;
        }
        if k == 0 {
            return false;
        }
        k -= 1;
    }
    toks[k].kind == TokenKind::Ident && atomic_names.iter().any(|n| n == &toks[k].text)
}

/// C005 — thread spawns outside the sanctioned pool module(s): ad-hoc
/// threads bypass the barrier protocol that keeps drains deterministic.
fn check_c005(ctx: &CRuleCtx<'_>, out: &mut Vec<CFinding>) {
    if !ctx.has_roots || ctx.is_test_path {
        return;
    }
    if ctx
        .spawn_ok
        .iter()
        .any(|p| ctx.rel_path.starts_with(p.as_str()))
    {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if ctx.in_test(t.line) {
            continue;
        }
        let hit = if t.is_ident("thread")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct("::")
            && toks[i + 2].is_ident("spawn")
        {
            Some(("thread::spawn", t.line))
        } else if t.is_punct(".")
            && i + 2 < toks.len()
            && toks[i + 1].is_ident("spawn")
            && toks[i + 2].is_punct("(")
        {
            Some((".spawn(…)", toks[i + 1].line))
        } else {
            None
        };
        if let Some((what, line)) = hit {
            push(
                out,
                "C005",
                line,
                format!(
                    "`{what}` outside the sanctioned pool module(s); all parallel \
                     execution must go through BroadcastPool"
                ),
                &[],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::detect_test_spans;

    fn spans_for(src: &str, reachable: &[(&str, bool)]) -> (Lexed, Vec<(u32, u32)>, Vec<FnSpan>) {
        // Build fn spans from the parser so tests mirror the engine.
        let lexed = lex(src);
        let test_spans = detect_test_spans(&lexed);
        let items = crate::parser::parse_file(&lexed);
        let fn_spans: Vec<FnSpan> = items
            .fns
            .iter()
            .map(|f| {
                let q = f.qualified();
                let r = reachable.iter().find(|(n, _)| *n == q).map(|(_, r)| *r);
                FnSpan {
                    line: f.line,
                    end_line: f.end_line,
                    reachable: r.unwrap_or(false),
                    chain: if r.unwrap_or(false) {
                        vec!["root".into(), q]
                    } else {
                        vec![]
                    },
                }
            })
            .collect();
        (lexed, test_spans, fn_spans)
    }

    fn run(src: &str, reachable: &[(&str, bool)]) -> Vec<CFinding> {
        let (lexed, test_spans, fn_spans) = spans_for(src, reachable);
        check_file(&CRuleCtx {
            rel_path: "crates/x/src/a.rs",
            lexed: &lexed,
            test_spans: &test_spans,
            is_test_path: false,
            fn_spans: &fn_spans,
            has_roots: true,
            spawn_ok: &[],
        })
    }

    #[test]
    fn c002_fires_only_in_reachable_fns() {
        let src = "\
            fn worker(v: &[u32], w: usize) {\n\
                let x = v[w];\n\
                let y = v.get(w).unwrap();\n\
                let n = x as u8;\n\
                if w > 9 { panic!(\"bad\"); }\n\
                let _ = (y, n);\n\
            }\n\
            fn driver(v: &[u32]) { let _ = v[0]; }\n";
        let hits = run(src, &[("worker", true)]);
        let c002: Vec<u32> = hits
            .iter()
            .filter(|f| f.rule == "C002")
            .map(|f| f.line)
            .collect();
        assert_eq!(c002, vec![2, 3, 4, 5], "{hits:?}");
        assert!(hits.iter().all(|f| f.chain == ["root", "worker"]));
        assert!(run(src, &[]).iter().all(|f| f.rule != "C002"));
    }

    #[test]
    fn c002_skips_array_literals_attrs_and_macros() {
        let src = "\
            #[derive(Clone)]\n\
            struct S { a: [u32; 2] }\n\
            fn worker() {\n\
                let a = [1u32, 2];\n\
                let v = vec![3u32];\n\
                let s = S { a: [0, 0] };\n\
                let _ = (a, v, s);\n\
            }\n";
        let hits = run(src, &[("worker", true)]);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn c002_sites_in_nested_unreachable_fns_are_not_charged() {
        let src = "\
            fn worker() {\n\
                fn helper(v: &[u32]) -> u32 { v[0] }\n\
                safe();\n\
            }\n\
            fn safe() {}\n";
        let hits = run(src, &[("worker", true)]);
        assert!(hits.is_empty(), "nested helper is not reachable: {hits:?}");
        let hits = run(src, &[("worker", true), ("helper", true)]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "C002");
    }

    #[test]
    fn c001_overrides_path_exemptions_in_reachable_code() {
        let src = "\
            fn worker() {\n\
                let t = std::time::Instant::now();\n\
                let _ = t;\n\
            }\n";
        let hits = run(src, &[("worker", true)]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "C001");
        assert!(hits[0].message.contains("D002"));
        assert_eq!(hits[0].chain, ["root", "worker"]);
    }

    #[test]
    fn c003_flags_interior_mutability_and_static_mut() {
        let src = "\
            static mut COUNTER: u32 = 0;\n\
            fn worker(c: &RefCell<u32>) { c.borrow_mut(); }\n\
            fn driver(c: &RefCell<u32>) { c.borrow_mut(); }\n";
        let hits = run(src, &[("worker", true)]);
        let rules: Vec<(u32, &str)> = hits.iter().map(|f| (f.line, f.rule)).collect();
        assert_eq!(rules, vec![(1, "C003"), (2, "C003")], "{hits:?}");
    }

    #[test]
    fn c004_requires_explicit_ordering_with_atomic_evidence() {
        let src = "\
            fn worker(head: &AtomicU64, ord: Ordering, v: &mut Vec<u32>) {\n\
                head.load(ord2());\n\
                head.store(1, Ordering::Release);\n\
                head.fetch_add(1, Ordering::AcqRel);\n\
                v.swap(0, 1);\n\
            }\n\
            fn ord2() -> Ordering { Ordering::Relaxed }\n";
        let hits = run(src, &[("worker", true)]);
        let c004: Vec<u32> = hits
            .iter()
            .filter(|f| f.rule == "C004")
            .map(|f| f.line)
            .collect();
        assert_eq!(c004, vec![2], "{hits:?}");
    }

    #[test]
    fn c005_flags_spawns_outside_sanctioned_paths() {
        let src = "fn f(scope: &Scope) { std::thread::spawn(|| {}); scope.spawn(|| {}); }\n";
        let (lexed, test_spans, fn_spans) = spans_for(src, &[]);
        let sanctioned = ["crates/x/src/".to_string()];
        let ctx = |has_roots: bool, spawn_ok: &'static bool| CRuleCtx {
            rel_path: "crates/x/src/a.rs",
            lexed: &lexed,
            test_spans: &test_spans,
            is_test_path: false,
            fn_spans: &fn_spans,
            has_roots,
            spawn_ok: if *spawn_ok { &sanctioned } else { &[] },
        };
        let hits = check_file(&ctx(true, &false));
        assert_eq!(
            hits.iter().filter(|f| f.rule == "C005").count(),
            2,
            "{hits:?}"
        );
        // Sanctioned path: clean.
        assert!(check_file(&ctx(true, &true)).is_empty());
        // No [roots] declared: C005 is off.
        assert!(check_file(&ctx(false, &false)).is_empty());
    }
}
