//! Reachability over the call graph.
//!
//! A deterministic breadth-first closure from the declared parallel
//! roots, with parent pointers so every finding can carry its full call
//! chain (root → … → offending fn). Kept as a pure function over plain
//! adjacency lists — no graph types — so properties (monotonicity under
//! edge addition, chain validity) are directly testable.

/// Result of a reachability pass over `n` nodes.
#[derive(Debug, Clone)]
pub struct Reach {
    /// `reachable[v]` — whether node `v` is reachable from any root.
    pub reachable: Vec<bool>,
    /// `parent[v]` — the node that first discovered `v` (`None` for
    /// roots and unreachable nodes).
    pub parent: Vec<Option<usize>>,
    /// BFS depth from the nearest root (`usize::MAX` when unreachable).
    pub depth: Vec<usize>,
}

impl Reach {
    /// Whether node `v` is worker-reachable.
    pub fn is_reachable(&self, v: usize) -> bool {
        self.reachable.get(v).copied().unwrap_or(false)
    }

    /// The call chain root → … → `v` as node ids (empty when `v` is
    /// unreachable).
    pub fn chain_to(&self, v: usize) -> Vec<usize> {
        if !self.is_reachable(v) {
            return Vec::new();
        }
        let mut chain = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }
}

/// Compute the closure of `roots` over `edges` (adjacency lists for `n`
/// nodes). Deterministic: roots are visited in the given order and each
/// adjacency list in order, so parent pointers (and thus reported
/// chains) are stable run to run.
pub fn closure(n: usize, edges: &[Vec<usize>], roots: &[usize]) -> Reach {
    let mut reach = Reach {
        reachable: vec![false; n],
        parent: vec![None; n],
        depth: vec![usize::MAX; n],
    };
    let mut queue = std::collections::VecDeque::new();
    for &r in roots {
        if r < n && !reach.reachable[r] {
            reach.reachable[r] = true;
            reach.depth[r] = 0;
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in edges.get(u).map(Vec::as_slice).unwrap_or(&[]) {
            if v < n && !reach.reachable[v] {
                reach.reachable[v] = true;
                reach.parent[v] = Some(u);
                reach.depth[v] = reach.depth[u] + 1;
                queue.push_back(v);
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adj(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
        let mut a = vec![Vec::new(); n];
        for &(u, v) in edges {
            a[u].push(v);
        }
        a
    }

    #[test]
    fn closure_follows_edges_transitively() {
        let edges = adj(5, &[(0, 1), (1, 2), (3, 4)]);
        let r = closure(5, &edges, &[0]);
        assert!(r.is_reachable(0) && r.is_reachable(1) && r.is_reachable(2));
        assert!(!r.is_reachable(3) && !r.is_reachable(4));
        assert_eq!(r.chain_to(2), vec![0, 1, 2]);
        assert_eq!(r.chain_to(4), Vec::<usize>::new());
    }

    #[test]
    fn chains_prefer_shortest_paths() {
        // 0→1→2→3 and 0→3: BFS must report the direct chain.
        let edges = adj(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let r = closure(4, &edges, &[0]);
        assert_eq!(r.chain_to(3), vec![0, 3]);
        assert_eq!(r.depth[3], 1);
    }

    #[test]
    fn multiple_roots_and_cycles_terminate() {
        let edges = adj(4, &[(0, 1), (1, 0), (2, 2), (1, 3)]);
        let r = closure(4, &edges, &[0, 2]);
        assert!(r.is_reachable(3));
        assert!(r.is_reachable(2));
        assert_eq!(r.chain_to(2), vec![2]);
        assert_eq!(r.chain_to(3), vec![0, 1, 3]);
    }

    #[test]
    fn out_of_range_roots_and_edges_are_ignored() {
        let edges = adj(2, &[(0, 1)]);
        let r = closure(2, &edges, &[7, 0]);
        assert!(r.is_reachable(1));
    }
}
