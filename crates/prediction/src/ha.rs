//! Historical Average: the paper's simplest baseline.

use mrvd_demand::DemandSeries;

use crate::features::{lagged_features, LAG_WINDOW};
use crate::Predictor;

/// Predicts the mean of the previous [`LAG_WINDOW`] slot counts
/// (Appendix A: "calculates the mean of the order records in the previous
/// 15 time slots as the next order count"). Stateless — `fit` is a no-op.
#[derive(Debug, Clone, Default)]
pub struct HistoricalAverage;

impl Predictor for HistoricalAverage {
    fn name(&self) -> &'static str {
        "HA"
    }

    fn fit(&mut self, _series: &DemandSeries, _train_days: usize) {}

    fn predict(&self, series: &DemandSeries, day: usize, slot: usize) -> Vec<f64> {
        let gs = day * series.slots_per_day() + slot;
        (0..series.regions())
            .map(|r| {
                let x = lagged_features(series, gs, r);
                x.iter().sum::<f64>() / LAG_WINDOW as f64
            })
            .collect()
    }

    fn clone_box(&self) -> Box<dyn Predictor + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_predicts_the_constant() {
        let s = DemandSeries::from_fn(2, 48, 3, |_, _, _| 7.0);
        let p = HistoricalAverage;
        let pred = p.predict(&s, 1, 20);
        assert_eq!(pred, vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn lags_behind_a_rising_series() {
        // HA of a ramp underestimates the next value — exactly why it has
        // the worst RMSE in the paper's Table 6.
        let s = DemandSeries::from_fn(1, 48, 1, |_, t, _| t as f64);
        let p = HistoricalAverage;
        let pred = p.predict(&s, 0, 40)[0];
        assert!(pred < 40.0);
        // Mean of 25..=39 is 32.
        assert!((pred - 32.0).abs() < 1e-9);
    }

    #[test]
    fn does_not_read_the_future() {
        let mut s = DemandSeries::from_fn(2, 48, 2, |d, t, r| (d + t + r) as f64);
        let p = HistoricalAverage;
        let before = p.predict(&s, 1, 10);
        // Mutate the target slot and everything after it.
        for t in 10..48 {
            for r in 0..2 {
                s.set(1, t, r, 9_999.0);
            }
        }
        assert_eq!(before, p.predict(&s, 1, 10));
    }
}
