//! Ordinary least squares over the lagged-count features.
//!
//! One global model (shared across regions, as in the paper's Appendix A)
//! with [`crate::LAG_WINDOW`] + 1 coefficients, fit by the normal
//! equations with a small ridge term for numerical safety and solved by
//! Gaussian elimination with partial pivoting — no linear-algebra crate is
//! available offline.

use mrvd_demand::DemandSeries;

use crate::features::{lagged_features, training_samples, LAG_WINDOW};
use crate::Predictor;

const DIM: usize = LAG_WINDOW + 1; // + intercept

/// Linear regression on the previous 15 slot counts.
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// `[w_1 … w_15, intercept]`; zero until [`Predictor::fit`] runs.
    coef: [f64; DIM],
    fitted: bool,
    /// Ridge regularization added to the normal-equation diagonal.
    ridge: f64,
}

impl LinearRegression {
    /// A model with the default tiny ridge term (1e-6).
    pub fn new() -> Self {
        Self {
            coef: [0.0; DIM],
            fitted: false,
            ridge: 1e-6,
        }
    }

    /// The fitted coefficients `[w_1 … w_15, intercept]`.
    pub fn coefficients(&self) -> &[f64; DIM] {
        &self.coef
    }
}

impl Default for LinearRegression {
    fn default() -> Self {
        Self::new()
    }
}

impl Predictor for LinearRegression {
    fn name(&self) -> &'static str {
        "LR"
    }

    #[allow(clippy::needless_range_loop)] // dual-indexed triangular matrix fill
    fn fit(&mut self, series: &DemandSeries, train_days: usize) {
        assert!(
            train_days <= series.days(),
            "LinearRegression: train_days exceeds series length"
        );
        // Accumulate XᵀX and Xᵀy.
        let mut xtx = [[0.0f64; DIM]; DIM];
        let mut xty = [0.0f64; DIM];
        let mut n = 0usize;
        for (x, y, _) in training_samples(series, train_days) {
            let mut ext = [0.0f64; DIM];
            ext[..LAG_WINDOW].copy_from_slice(&x);
            ext[LAG_WINDOW] = 1.0;
            for i in 0..DIM {
                for j in i..DIM {
                    xtx[i][j] += ext[i] * ext[j];
                }
                xty[i] += ext[i] * y;
            }
            n += 1;
        }
        assert!(n > DIM, "LinearRegression: not enough training samples");
        // Symmetrize and regularize.
        for i in 0..DIM {
            for j in 0..i {
                xtx[i][j] = xtx[j][i];
            }
            xtx[i][i] += self.ridge * n as f64;
        }
        self.coef = solve(xtx, xty);
        self.fitted = true;
    }

    fn predict(&self, series: &DemandSeries, day: usize, slot: usize) -> Vec<f64> {
        assert!(self.fitted, "LinearRegression: predict before fit");
        let gs = day * series.slots_per_day() + slot;
        (0..series.regions())
            .map(|r| {
                let x = lagged_features(series, gs, r);
                let mut y = self.coef[LAG_WINDOW];
                for (c, xi) in self.coef.iter().zip(&x) {
                    y += c * xi;
                }
                y.max(0.0)
            })
            .collect()
    }

    fn clone_box(&self) -> Box<dyn Predictor + Send> {
        Box::new(self.clone())
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// # Panics
/// Panics on a (numerically) singular system — impossible after ridge
/// regularization.
#[allow(clippy::needless_range_loop)] // row/column elimination needs index pairs
fn solve(mut a: [[f64; DIM]; DIM], mut b: [f64; DIM]) -> [f64; DIM] {
    for col in 0..DIM {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..DIM {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        assert!(
            a[pivot][col].abs() > 1e-12,
            "linear system is singular at column {col}"
        );
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..DIM {
            let f = a[row][col] / a[col][col];
            for k in col..DIM {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = [0.0f64; DIM];
    for col in (0..DIM).rev() {
        let mut acc = b[col];
        for k in col + 1..DIM {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_an_exact_linear_rule() {
        // y(t) = 2·x_{t−1} + 3 (x_{t−1} is the most recent lag).
        let s = DemandSeries::from_fn(4, 48, 2, |d, t, _| {
            let gs = d * 48 + t;
            // A sequence where next = 2·prev + 3 cannot stay bounded, so
            // use an oscillating base and check coefficient recovery on a
            // rule the features can express: y = last lag * 2 + 3 is not
            // self-consistent. Instead: value alternates a,b with
            // b = 2a + 3 and a = 2b + 3 has no solution. Use a direct
            // construction below instead.
            (gs % 7) as f64
        });
        // Sanity: fitting any series must reproduce in-sample predictions
        // reasonably; here we only check the solver by a handcrafted
        // system.
        let mut lr = LinearRegression::new();
        lr.fit(&s, 4);
        assert!(lr.coefficients().iter().all(|c| c.is_finite()));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index-pair matrix construction
    fn solver_inverts_known_system() {
        // Build A x = b with known x via a diagonally dominant A.
        let mut a = [[0.0; DIM]; DIM];
        let mut x_true = [0.0; DIM];
        for i in 0..DIM {
            x_true[i] = (i as f64) - 3.5;
            for j in 0..DIM {
                a[i][j] = if i == j {
                    10.0
                } else {
                    1.0 / (1.0 + (i + j) as f64)
                };
            }
        }
        let mut b = [0.0; DIM];
        for i in 0..DIM {
            for j in 0..DIM {
                b[i] += a[i][j] * x_true[j];
            }
        }
        let x = solve(a, b);
        for i in 0..DIM {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "x[{i}] = {}", x[i]);
        }
    }

    #[test]
    fn fits_periodic_demand_better_than_ha() {
        use crate::ha::HistoricalAverage;
        // Strong periodic pattern: LR can weight the lag at the period,
        // HA smears over all 15.
        let s = DemandSeries::from_fn(6, 48, 4, |d, t, r| {
            let gs = d * 48 + t;
            10.0 + 8.0 * ((gs % 5) as f64) + r as f64
        });
        let mut lr = LinearRegression::new();
        lr.fit(&s, 5);
        let ha = HistoricalAverage;
        let mut lr_err = 0.0;
        let mut ha_err = 0.0;
        for slot in 0..48 {
            let truth: Vec<f64> = (0..4).map(|r| s.get(5, slot, r)).collect();
            let lp = lr.predict(&s, 5, slot);
            let hp = ha.predict(&s, 5, slot);
            for r in 0..4 {
                lr_err += (lp[r] - truth[r]).powi(2);
                ha_err += (hp[r] - truth[r]).powi(2);
            }
        }
        assert!(
            lr_err < 0.25 * ha_err,
            "LR squared error {lr_err:.1} vs HA {ha_err:.1}"
        );
    }

    #[test]
    fn predictions_are_non_negative() {
        let s = DemandSeries::from_fn(3, 48, 2, |_, t, _| if t % 2 == 0 { 0.0 } else { 1.0 });
        let mut lr = LinearRegression::new();
        lr.fit(&s, 3);
        let p = lr.predict(&s, 2, 30);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn does_not_read_the_future() {
        let mut s = DemandSeries::from_fn(3, 48, 2, |d, t, r| ((d * 48 + t + r) % 11) as f64);
        let mut lr = LinearRegression::new();
        lr.fit(&s, 2);
        let before = lr.predict(&s, 2, 10);
        for t in 10..48 {
            for r in 0..2 {
                s.set(2, t, r, 1e6);
            }
        }
        assert_eq!(before, lr.predict(&s, 2, 10));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let s = DemandSeries::zeros(1, 48, 1);
        LinearRegression::new().predict(&s, 0, 20);
    }
}
