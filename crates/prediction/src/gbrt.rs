//! Stochastic gradient-boosted regression trees (Friedman 2002 — the
//! paper's citation \[18\]) with histogram-based split finding.
//!
//! Built from scratch: CART trees on quantile-binned features, squared
//! loss (so per-tree targets are plain residuals), shrinkage, and
//! per-tree row subsampling. Histogram splits make training linear in the
//! sample count per depth level, which keeps the full paper-scale history
//! (91 days × 48 slots × 256 regions ≈ 1.1M samples) tractable.

use mrvd_demand::DemandSeries;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::features::{lagged_features, training_samples, LAG_WINDOW};
use crate::Predictor;

/// GBRT hyper-parameters.
#[derive(Debug, Clone)]
pub struct GbrtConfig {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Number of quantile bins per feature.
    pub n_bins: usize,
    /// Fraction of rows sampled per tree (stochastic gradient boosting).
    pub subsample: f64,
    /// Minimum rows in a leaf.
    pub min_samples_leaf: usize,
    /// RNG seed for row subsampling.
    pub seed: u64,
}

impl Default for GbrtConfig {
    fn default() -> Self {
        Self {
            n_trees: 60,
            max_depth: 3,
            learning_rate: 0.12,
            n_bins: 32,
            subsample: 0.5,
            min_samples_leaf: 20,
            seed: 0xB005,
        }
    }
}

/// Sentinel feature id marking a leaf node.
const LEAF: u16 = u16::MAX;

/// One tree node; leaves carry the prediction in `value`.
#[derive(Debug, Clone)]
struct Node {
    feature: u16,
    /// Go left when `bin(x[feature]) <= threshold_bin`.
    threshold_bin: u8,
    left: u32,
    right: u32,
    value: f64,
}

#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict_binned(&self, x: &[u8; LAG_WINDOW]) -> f64 {
        let mut i = 0usize;
        loop {
            let n = &self.nodes[i];
            if n.feature == LEAF {
                return n.value;
            }
            i = if x[n.feature as usize] <= n.threshold_bin {
                n.left as usize
            } else {
                n.right as usize
            };
        }
    }
}

/// Gradient-boosted regression trees over the lagged-count features.
#[derive(Debug, Clone)]
pub struct Gbrt {
    config: GbrtConfig,
    /// Per-feature ascending bin edges; `bin = #edges ≤ x`.
    bin_edges: Vec<Vec<f64>>,
    base: f64,
    trees: Vec<Tree>,
}

impl Gbrt {
    /// A model with the given hyper-parameters.
    pub fn new(config: GbrtConfig) -> Self {
        assert!(config.n_trees > 0, "Gbrt: need at least one tree");
        assert!(
            (0.0..=1.0).contains(&config.subsample) && config.subsample > 0.0,
            "Gbrt: subsample must be in (0, 1]"
        );
        assert!(
            config.n_bins >= 2 && config.n_bins <= 256,
            "Gbrt: n_bins must be in 2..=256"
        );
        Self {
            config,
            bin_edges: Vec::new(),
            base: 0.0,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    fn bin_value(&self, feature: usize, x: f64) -> u8 {
        let edges = &self.bin_edges[feature];
        // partition_point = #edges ≤ x (edges ascending).
        edges.partition_point(|&e| e <= x) as u8
    }

    fn bin_features(&self, x: &[f64; LAG_WINDOW]) -> [u8; LAG_WINDOW] {
        let mut out = [0u8; LAG_WINDOW];
        for (f, o) in out.iter_mut().enumerate() {
            *o = self.bin_value(f, x[f]);
        }
        out
    }

    fn predict_one(&self, x: &[f64; LAG_WINDOW]) -> f64 {
        let xb = self.bin_features(x);
        let mut y = self.base;
        for t in &self.trees {
            y += self.config.learning_rate * t.predict_binned(&xb);
        }
        y.max(0.0)
    }
}

/// Builds quantile bin edges for one feature from its sorted values.
fn quantile_edges(mut values: Vec<f64>, n_bins: usize) -> Vec<f64> {
    // lint:allow(D004): sorting bare scalars — equal keys are identical
    // values, so any permutation of them yields the same edge vector
    values.sort_by(|a, b| a.partial_cmp(b).expect("counts are finite"));
    let mut edges = Vec::new();
    for b in 1..n_bins {
        let idx = b * values.len() / n_bins;
        let e = values[idx.min(values.len() - 1)];
        if edges.last() != Some(&e) {
            edges.push(e);
        }
    }
    edges
}

/// Recursive histogram-based tree construction on residuals.
struct TreeBuilder<'a> {
    xb: &'a [[u8; LAG_WINDOW]],
    residuals: &'a [f64],
    config: &'a GbrtConfig,
    nodes: Vec<Node>,
}

impl<'a> TreeBuilder<'a> {
    fn build(&mut self, rows: &mut [u32], depth: usize) -> u32 {
        let sum: f64 = rows.iter().map(|&i| self.residuals[i as usize]).sum();
        let n = rows.len() as f64;
        let mean = sum / n;
        if depth >= self.config.max_depth || rows.len() < 2 * self.config.min_samples_leaf {
            return self.push_leaf(mean);
        }
        // Histogram per feature: (count, residual sum) per bin.
        let bins = self.config.n_bins;
        let mut best: Option<(usize, u8, f64)> = None; // (feature, bin, gain)
        for f in 0..LAG_WINDOW {
            let mut cnt = vec![0u32; bins];
            let mut sums = vec![0.0f64; bins];
            for &i in rows.iter() {
                let b = self.xb[i as usize][f] as usize;
                cnt[b] += 1;
                sums[b] += self.residuals[i as usize];
            }
            let mut cl = 0u32;
            let mut sl = 0.0f64;
            for b in 0..bins - 1 {
                cl += cnt[b];
                sl += sums[b];
                let cr = rows.len() as u32 - cl;
                if (cl as usize) < self.config.min_samples_leaf
                    || (cr as usize) < self.config.min_samples_leaf
                {
                    continue;
                }
                let sr = sum - sl;
                // Variance-reduction gain (up to constants).
                let gain = sl * sl / cl as f64 + sr * sr / cr as f64 - sum * sum / n;
                if gain > best.map_or(1e-12, |(_, _, g)| g) {
                    best = Some((f, b as u8, gain));
                }
            }
        }
        let Some((feature, threshold_bin, _)) = best else {
            return self.push_leaf(mean);
        };
        // Partition rows in place.
        let mut lo = 0usize;
        let mut hi = rows.len();
        while lo < hi {
            if self.xb[rows[lo] as usize][feature] <= threshold_bin {
                lo += 1;
            } else {
                hi -= 1;
                rows.swap(lo, hi);
            }
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: feature as u16,
            threshold_bin,
            left: 0,
            right: 0,
            value: mean,
        });
        let (left_rows, right_rows) = rows.split_at_mut(lo);
        let left = self.build(left_rows, depth + 1);
        let right = self.build(right_rows, depth + 1);
        self.nodes[id as usize].left = left;
        self.nodes[id as usize].right = right;
        id
    }

    fn push_leaf(&mut self, value: f64) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: LEAF,
            threshold_bin: 0,
            left: 0,
            right: 0,
            value,
        });
        id
    }
}

impl Predictor for Gbrt {
    fn name(&self) -> &'static str {
        "GBRT"
    }

    fn fit(&mut self, series: &DemandSeries, train_days: usize) {
        assert!(
            train_days <= series.days(),
            "Gbrt: train_days exceeds series length"
        );
        let samples: Vec<([f64; LAG_WINDOW], f64)> = training_samples(series, train_days)
            .map(|(x, y, _)| (x, y))
            .collect();
        assert!(
            samples.len() >= 2 * self.config.min_samples_leaf,
            "Gbrt: not enough training samples ({})",
            samples.len()
        );
        // Quantile bin edges per feature.
        self.bin_edges = (0..LAG_WINDOW)
            .map(|f| {
                quantile_edges(
                    samples.iter().map(|(x, _)| x[f]).collect(),
                    self.config.n_bins,
                )
            })
            .collect();
        let xb: Vec<[u8; LAG_WINDOW]> = samples.iter().map(|(x, _)| self.bin_features(x)).collect();
        let y: Vec<f64> = samples.iter().map(|(_, y)| *y).collect();
        self.base = y.iter().sum::<f64>() / y.len() as f64;
        let mut f: Vec<f64> = vec![self.base; y.len()];
        let mut residuals: Vec<f64> = y.iter().zip(&f).map(|(y, f)| y - f).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.trees.clear();
        for _ in 0..self.config.n_trees {
            // Row subsample.
            let mut rows: Vec<u32> = if self.config.subsample >= 1.0 {
                (0..y.len() as u32).collect()
            } else {
                (0..y.len() as u32)
                    .filter(|_| rng.gen::<f64>() < self.config.subsample)
                    .collect()
            };
            if rows.len() < 2 * self.config.min_samples_leaf {
                rows = (0..y.len() as u32).collect();
            }
            let mut builder = TreeBuilder {
                xb: &xb,
                residuals: &residuals,
                config: &self.config,
                nodes: Vec::new(),
            };
            let root = builder.build(&mut rows, 0);
            debug_assert_eq!(root, 0);
            let tree = Tree {
                nodes: builder.nodes,
            };
            // Update F and residuals on *all* rows.
            for i in 0..y.len() {
                f[i] += self.config.learning_rate * tree.predict_binned(&xb[i]);
                residuals[i] = y[i] - f[i];
            }
            self.trees.push(tree);
        }
    }

    fn predict(&self, series: &DemandSeries, day: usize, slot: usize) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "Gbrt: predict before fit");
        let gs = day * series.slots_per_day() + slot;
        (0..series.regions())
            .map(|r| self.predict_one(&lagged_features(series, gs, r)))
            .collect()
    }

    fn clone_box(&self) -> Box<dyn Predictor + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearRegression;

    fn periodic_series(days: usize) -> DemandSeries {
        // Scrambled cycle of length 17 (> LAG_WINDOW, so no lag aligns with
        // the period and linear models cannot represent it exactly), with
        // magnitudes chosen so the next value is a deterministic *step
        // function* of the last lag — ideal territory for trees.
        const MAG: [f64; 17] = [
            13.0, 2.0, 29.0, 7.0, 23.0, 5.0, 31.0, 11.0, 3.0, 19.0, 1.0, 37.0, 17.0, 41.0, 9.0,
            27.0, 21.0,
        ];
        DemandSeries::from_fn(days, 48, 4, |d, t, r| {
            let gs = d * 48 + t;
            10.0 * MAG[gs % 17] + r as f64
        })
    }

    fn cfg_small() -> GbrtConfig {
        GbrtConfig {
            n_trees: 40,
            max_depth: 3,
            learning_rate: 0.15,
            n_bins: 16,
            subsample: 1.0,
            min_samples_leaf: 5,
            seed: 1,
        }
    }

    fn sq_err(pred: &[f64], truth: &[f64]) -> f64 {
        pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum()
    }

    #[test]
    fn learns_nonlinear_interactions_better_than_lr() {
        let s = periodic_series(6);
        let mut g = Gbrt::new(cfg_small());
        g.fit(&s, 5);
        let mut lr = LinearRegression::new();
        lr.fit(&s, 5);
        let mut g_err = 0.0;
        let mut l_err = 0.0;
        for slot in 0..48 {
            let truth: Vec<f64> = (0..4).map(|r| s.get(5, slot, r)).collect();
            g_err += sq_err(&g.predict(&s, 5, slot), &truth);
            l_err += sq_err(&lr.predict(&s, 5, slot), &truth);
        }
        assert!(
            g_err < 0.6 * l_err,
            "GBRT squared error {g_err:.1} vs LR {l_err:.1}"
        );
    }

    #[test]
    fn more_trees_fit_training_data_better() {
        let s = periodic_series(4);
        let train_err = |n_trees: usize| {
            let mut g = Gbrt::new(GbrtConfig {
                n_trees,
                ..cfg_small()
            });
            g.fit(&s, 4);
            let mut err = 0.0;
            for slot in 16..48 {
                let truth: Vec<f64> = (0..4).map(|r| s.get(3, slot, r)).collect();
                err += sq_err(&g.predict(&s, 3, slot), &truth);
            }
            err
        };
        let few = train_err(3);
        let many = train_err(40);
        assert!(many < few, "3 trees: {few:.2}, 40 trees: {many:.2}");
    }

    #[test]
    fn constant_series_is_predicted_exactly() {
        let s = DemandSeries::from_fn(3, 48, 2, |_, _, _| 6.0);
        let mut g = Gbrt::new(cfg_small());
        g.fit(&s, 3);
        let p = g.predict(&s, 2, 30);
        assert!(p.iter().all(|&v| (v - 6.0).abs() < 1e-9), "{p:?}");
    }

    #[test]
    fn does_not_read_the_future() {
        let mut s = periodic_series(4);
        let mut g = Gbrt::new(cfg_small());
        g.fit(&s, 3);
        let before = g.predict(&s, 3, 20);
        for t in 20..48 {
            for r in 0..4 {
                s.set(3, t, r, 1e6);
            }
        }
        assert_eq!(before, g.predict(&s, 3, 20));
    }

    #[test]
    fn predictions_are_non_negative() {
        let s = DemandSeries::from_fn(3, 48, 2, |_, t, _| (t % 2) as f64);
        let mut g = Gbrt::new(cfg_small());
        g.fit(&s, 3);
        assert!(g.predict(&s, 2, 25).iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn subsampling_is_deterministic_given_seed() {
        let s = periodic_series(4);
        let cfg = GbrtConfig {
            subsample: 0.5,
            ..cfg_small()
        };
        let mut a = Gbrt::new(cfg.clone());
        a.fit(&s, 4);
        let mut b = Gbrt::new(cfg);
        b.fit(&s, 4);
        assert_eq!(a.predict(&s, 3, 30), b.predict(&s, 3, 30));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let s = DemandSeries::zeros(1, 48, 1);
        Gbrt::new(GbrtConfig::default()).predict(&s, 0, 20);
    }
}
