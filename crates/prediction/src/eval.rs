//! Prediction evaluation — the loop behind the paper's Table 6.
//!
//! Every model predicts each `(day, slot, region)` cell of the evaluation
//! range; errors are aggregated into the two metrics the paper reports:
//! relative RMSE (percent of the mean true count) and real RMSE (counts).

use mrvd_demand::DemandSeries;
use mrvd_stats::{mae, relative_rmse, rmse};

use crate::Predictor;

/// Aggregated prediction errors of one model over an evaluation range.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Model display name.
    pub name: &'static str,
    /// Mean absolute error, in counts.
    pub mae: f64,
    /// RMSE as a percentage of the mean true count ("RMSE (%)").
    pub rmse_pct: f64,
    /// RMSE in counts ("Real RMSE").
    pub rmse_real: f64,
    /// Number of evaluated cells.
    pub cells: usize,
}

/// Fits `model` on the first `train_days` and evaluates it on days
/// `train_days..series.days()`, skipping the first `skip_slots` slots of
/// the first evaluation day (so lag windows never cross into the target
/// range unpredictably; 0 is fine for all built-in models).
///
/// # Panics
/// Panics if the evaluation range is empty.
pub fn evaluate(
    model: &mut dyn Predictor,
    series: &DemandSeries,
    train_days: usize,
    skip_slots: usize,
) -> EvalReport {
    assert!(
        train_days < series.days(),
        "evaluate: no evaluation days after {train_days} training days"
    );
    model.fit(series, train_days);
    let mut pred = Vec::new();
    let mut truth = Vec::new();
    for day in train_days..series.days() {
        let start = if day == train_days { skip_slots } else { 0 };
        for slot in start..series.slots_per_day() {
            let p = model.predict(series, day, slot);
            assert_eq!(
                p.len(),
                series.regions(),
                "evaluate: model returned wrong region count"
            );
            for (r, &v) in p.iter().enumerate() {
                assert!(v.is_finite(), "evaluate: non-finite prediction");
                pred.push(v);
                truth.push(series.get(day, slot, r));
            }
        }
    }
    EvalReport {
        name: model.name(),
        mae: mae(&pred, &truth),
        rmse_pct: relative_rmse(&pred, &truth),
        rmse_real: rmse(&pred, &truth),
        cells: pred.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ha::HistoricalAverage;
    use crate::linreg::LinearRegression;

    fn series() -> DemandSeries {
        DemandSeries::from_fn(6, 48, 4, |d, t, r| {
            5.0 + ((d * 48 + t) % 6) as f64 * 2.0 + r as f64
        })
    }

    #[test]
    fn perfect_periodic_data_gives_lr_near_zero_error() {
        let s = series();
        let mut lr = LinearRegression::new();
        let report = evaluate(&mut lr, &s, 5, 0);
        assert!(report.rmse_real < 0.2, "LR real RMSE {}", report.rmse_real);
        assert_eq!(report.cells, 48 * 4);
    }

    #[test]
    fn ha_is_worse_than_lr_on_periodic_data() {
        let s = series();
        let mut lr = LinearRegression::new();
        let mut ha = HistoricalAverage;
        let lr_report = evaluate(&mut lr, &s, 5, 0);
        let ha_report = evaluate(&mut ha, &s, 5, 0);
        assert!(ha_report.rmse_real > 2.0 * lr_report.rmse_real);
        assert!(ha_report.rmse_pct > lr_report.rmse_pct);
    }

    #[test]
    #[should_panic(expected = "no evaluation days")]
    fn empty_eval_range_panics() {
        let s = series();
        evaluate(&mut HistoricalAverage, &s, 6, 0);
    }
}
