//! Lagged-count features shared by HA, LR and GBRT.
//!
//! The paper's baseline predictors all consume "the order records in the
//! previous 15 time slots" (Appendix A); this module extracts those
//! windows from a [`DemandSeries`], spanning day boundaries via the global
//! slot index.

use mrvd_demand::DemandSeries;

/// Number of lagged slots fed to HA / LR / GBRT (the paper uses 15).
pub const LAG_WINDOW: usize = 15;

/// The `LAG_WINDOW` counts preceding global slot `global_slot` for
/// `region`, oldest first. Slots before the start of the series are
/// zero-filled (only relevant in the first hours of day 0).
pub fn lagged_features(
    series: &DemandSeries,
    global_slot: usize,
    region: usize,
) -> [f64; LAG_WINDOW] {
    let mut out = [0.0; LAG_WINDOW];
    for (i, o) in out.iter_mut().enumerate() {
        let lag = LAG_WINDOW - i; // oldest first
        if global_slot >= lag {
            *o = series.get_flat(global_slot - lag, region);
        }
    }
    out
}

/// Iterates `(features, target, region)` training samples over the first
/// `train_days` days, skipping the first `LAG_WINDOW` global slots (whose
/// windows would be zero-padded).
pub fn training_samples(
    series: &DemandSeries,
    train_days: usize,
) -> impl Iterator<Item = ([f64; LAG_WINDOW], f64, usize)> + '_ {
    let spd = series.slots_per_day();
    let regions = series.regions();
    (LAG_WINDOW..train_days * spd).flat_map(move |gs| {
        (0..regions).map(move |r| {
            let x = lagged_features(series, gs, r);
            let y = series.get_flat(gs, r);
            (x, y, r)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_series() -> DemandSeries {
        // Value = global slot index, identical in both regions.
        DemandSeries::from_fn(2, 10, 2, |d, t, _| (d * 10 + t) as f64)
    }

    #[test]
    fn window_is_oldest_first_and_spans_days() {
        let s = ramp_series();
        let f = lagged_features(&s, 16, 0);
        let expect: Vec<f64> = (1..16).map(|x| x as f64).collect();
        assert_eq!(f.to_vec(), expect);
    }

    #[test]
    fn early_slots_zero_fill() {
        let s = ramp_series();
        let f = lagged_features(&s, 3, 1);
        // lags 15..4 missing → zeros; then slots 0,1,2.
        assert_eq!(&f[..12], &[0.0; 12]);
        assert_eq!(&f[12..], &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn training_samples_cover_all_regions_and_slots() {
        let s = ramp_series();
        let samples: Vec<_> = training_samples(&s, 2).collect();
        // (2*10 − 15) slots × 2 regions.
        assert_eq!(samples.len(), 5 * 2);
        // Targets equal the global slot value.
        assert!(samples
            .iter()
            .all(|(x, y, _)| x[LAG_WINDOW - 1] + 1.0 == *y));
    }
}
