//! Demand-prediction substrate, built entirely from scratch.
//!
//! The paper's offline process predicts the order count of every region for
//! the next 30-minute slot and compares four models (its Appendix A,
//! Table 6): Historical Average, Linear Regression, Gradient-Boosted
//! Regression Trees and DeepST (a CNN over demand grids); an appendix also
//! sketches DeepST-GC, a graph-convolution variant for irregular regions.
//! No ML crates are available offline, so this crate implements all of
//! them:
//!
//! * [`ha`] — [`HistoricalAverage`]: mean of the previous 15 slots;
//! * [`linreg`] — [`LinearRegression`]: OLS over the previous 15 slot
//!   counts (normal equations + Gaussian elimination);
//! * [`gbrt`] — [`Gbrt`]: stochastic gradient-boosted CART trees with
//!   histogram split finding (Friedman 2002, the paper's citation \[18\]);
//! * [`nn`] — a minimal dense/conv neural-network kit with Adam and
//!   gradient-checked backprop, hosting [`DeepStNet`] (the DeepST
//!   substitute: closeness/period/trend frames + time metadata) and
//!   [`GraphConvNet`] (the DeepST-GC substitute);
//! * [`eval`] — the Table-6 evaluation loop (relative RMSE % and real
//!   RMSE per slot prediction).
//!
//! All models implement [`Predictor`] and are trained on
//! [`mrvd_demand::DemandSeries`] histories. Predictions for `(day, slot)`
//! may only read counts strictly before that slot — a property the test
//! suite enforces by mutating the future and checking invariance.

#![forbid(unsafe_code)]

pub mod eval;
pub mod features;
pub mod gbrt;
pub mod ha;
pub mod linreg;
pub mod nn;

pub use eval::{evaluate, EvalReport};
pub use features::{lagged_features, LAG_WINDOW};
pub use gbrt::{Gbrt, GbrtConfig};
pub use ha::HistoricalAverage;
pub use linreg::LinearRegression;
pub use nn::deepst::{DeepStConfig, DeepStNet};
pub use nn::graphconv::{GraphConvConfig, GraphConvNet};

use mrvd_demand::DemandSeries;

/// A demand predictor: fits offline on the first `train_days` of a series,
/// then predicts per-region counts for later `(day, slot)` pairs.
pub trait Predictor {
    /// Short display name (matches the paper's tables: "HA", "LR", "GBRT",
    /// "DeepST", "DeepST-GC").
    fn name(&self) -> &'static str;

    /// Fits the model on days `0..train_days` of `series`.
    ///
    /// # Panics
    /// Implementations panic if `train_days` exceeds `series.days()` or is
    /// too small for the model's lag structure.
    fn fit(&mut self, series: &DemandSeries, train_days: usize);

    /// Predicts the per-region count of `(day, slot)`, reading only counts
    /// strictly before that slot.
    fn predict(&self, series: &DemandSeries, day: usize, slot: usize) -> Vec<f64>;

    /// Clones the (possibly fitted) model into a boxed trait object —
    /// lets an expensively trained model be shared across many simulation
    /// runs.
    fn clone_box(&self) -> Box<dyn Predictor + Send>;
}
