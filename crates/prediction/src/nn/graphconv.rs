//! `GraphConvNet` — the DeepST-GC substitute (the paper's Appendix A
//! extension for irregular regions such as NYC's 262 taxi zones).
//!
//! Regions form a graph; the convolution is `X' = σ(Â X W)` with
//! `Â = D^{-1/2}(A + I)D^{-1/2}` (Kipf & Welling, the paper's citation
//! \[26\]). Two graph-conv layers consume the same 9 temporal channels as
//! [`crate::DeepStNet`], and the same dense metadata head is fused in.
//! Works over *any* adjacency, so it also runs on the regular grid (where
//! it is directly comparable with the CNN).

use mrvd_demand::DemandSeries;
use mrvd_spatial::Grid;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

use super::dense::Dense;
use super::param::Param;
use super::{relu_backward, relu_inplace};
use crate::Predictor;

/// Input channels: 3 closeness + 3 period + 3 trend (same as the CNN).
const IN_CH: usize = 9;
const DOW: usize = 7;

/// Hyper-parameters of [`GraphConvNet`].
#[derive(Debug, Clone)]
pub struct GraphConvConfig {
    /// Width of the hidden graph-conv layer.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for init and shuffling.
    pub seed: u64,
    /// First day eligible as a training target (trend horizon).
    pub min_history_days: usize,
}

impl Default for GraphConvConfig {
    fn default() -> Self {
        Self {
            hidden: 24,
            epochs: 20,
            lr: 2e-3,
            batch_size: 8,
            seed: 0x6C9,
            min_history_days: 21,
        }
    }
}

/// Two-layer graph-convolutional demand predictor.
#[derive(Clone)]
pub struct GraphConvNet {
    n: usize,
    /// Normalized adjacency `Â`, dense row-major `[n, n]`.
    a_hat: Vec<f64>,
    w1: Param,
    b1: Param,
    w2: Param,
    b2: Param,
    meta: Dense,
    config: GraphConvConfig,
    scale: f64,
    slots_per_day: usize,
    fitted: bool,
}

impl GraphConvNet {
    /// Builds the net from an undirected adjacency list over `n` regions.
    ///
    /// # Panics
    /// Panics if an adjacency entry is out of range or `n == 0`.
    pub fn new(
        n: usize,
        adjacency: &[(usize, usize)],
        slots_per_day: usize,
        config: GraphConvConfig,
    ) -> Self {
        assert!(n > 0, "GraphConvNet: need at least one region");
        assert!(
            slots_per_day > 0,
            "GraphConvNet: slots_per_day must be positive"
        );
        // A + I.
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        for &(u, v) in adjacency {
            assert!(u < n && v < n, "GraphConvNet: adjacency out of range");
            a[u * n + v] = 1.0;
            a[v * n + u] = 1.0;
        }
        // Â = D^{-1/2} (A+I) D^{-1/2}.
        let deg: Vec<f64> = (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j]).sum::<f64>())
            .collect();
        let mut a_hat = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                if a[i * n + j] != 0.0 {
                    a_hat[i * n + j] = a[i * n + j] / (deg[i] * deg[j]).sqrt();
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let h = config.hidden;
        Self {
            n,
            a_hat,
            w1: Param::he_uniform(IN_CH * h, IN_CH, &mut rng),
            b1: Param::zeros(h),
            w2: Param::he_uniform(h, h, &mut rng),
            b2: Param::zeros(1),
            meta: Dense::new(slots_per_day + DOW, n, &mut rng),
            config,
            scale: 1.0,
            slots_per_day,
            fitted: false,
        }
    }

    /// Builds the net over a rectangular grid's 8-neighbour adjacency —
    /// the regular-grid instantiation used in the comparison experiments.
    pub fn from_grid(grid: &Grid, slots_per_day: usize, config: GraphConvConfig) -> Self {
        let mut edges = Vec::new();
        for r in grid.regions() {
            for nb in grid.neighbors(r) {
                if nb.idx() > r.idx() {
                    edges.push((r.idx(), nb.idx()));
                }
            }
        }
        Self::new(grid.num_regions(), &edges, slots_per_day, config)
    }

    /// Node features `[n, IN_CH]` for `(day, slot)` — same temporal views
    /// as the CNN, but per region instead of per grid cell.
    fn assemble_features(&self, series: &DemandSeries, day: usize, slot: usize) -> Vec<f64> {
        let n = self.n;
        let spd = series.slots_per_day();
        let gs = day * spd + slot;
        let mut x = vec![0.0; n * IN_CH];
        let write = |ch: usize, gday: i64, gslot: i64, x: &mut Vec<f64>| {
            if gday < 0 || gslot < 0 {
                return;
            }
            for r in 0..n {
                x[r * IN_CH + ch] = series.get(gday as usize, gslot as usize, r) * self.scale;
            }
        };
        for c in 0..3 {
            let g = gs as i64 - (c as i64 + 1);
            if g >= 0 {
                write(c, g / spd as i64, g % spd as i64, &mut x);
            }
        }
        for p in 0..3 {
            write(3 + p, day as i64 - (p as i64 + 1), slot as i64, &mut x);
        }
        for q in 0..3 {
            write(6 + q, day as i64 - 7 * (q as i64 + 1), slot as i64, &mut x);
        }
        x
    }

    fn assemble_meta(&self, day: usize, slot: usize) -> Vec<f64> {
        let mut m = vec![0.0; self.slots_per_day + DOW];
        m[slot % self.slots_per_day] = 1.0;
        m[self.slots_per_day + day % DOW] = 1.0;
        m
    }

    /// `out[n, c2] = Â · x[n, c1] · W[c1, c2]`, computed as (Â x) then (· W).
    fn propagate(&self, x: &[f64], c_in: usize) -> Vec<f64> {
        let n = self.n;
        let mut ax = vec![0.0; n * c_in];
        for i in 0..n {
            for j in 0..n {
                let a = self.a_hat[i * n + j];
                if a == 0.0 {
                    continue;
                }
                for c in 0..c_in {
                    ax[i * c_in + c] += a * x[j * c_in + c];
                }
            }
        }
        ax
    }

    /// Transposed propagation for gradients: `Â` is symmetric, so this is
    /// the same operation.
    fn propagate_back(&self, g: &[f64], c: usize) -> Vec<f64> {
        self.propagate(g, c)
    }

    fn forward(&self, x: &[f64], meta: &[f64]) -> GcCache {
        let n = self.n;
        let h = self.config.hidden;
        let ax = self.propagate(x, IN_CH);
        // hidden[n, h] = ReLU(ax · W1 + b1).
        let mut hidden = vec![0.0; n * h];
        for i in 0..n {
            for c2 in 0..h {
                let mut acc = self.b1.w[c2];
                for c1 in 0..IN_CH {
                    acc += ax[i * IN_CH + c1] * self.w1.w[c1 * h + c2];
                }
                hidden[i * h + c2] = acc;
            }
        }
        let m1 = relu_inplace(&mut hidden);
        let ah1 = self.propagate(&hidden, h);
        // y[n] = ah1 · w2 + b2 + meta head.
        let meta_out = self.meta.forward(meta);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = self.b2.w[0];
            for c in 0..h {
                acc += ah1[i * h + c] * self.w2.w[c];
            }
            y[i] = acc + meta_out[i];
        }
        GcCache { ax, m1, ah1, y }
    }

    fn backward(&mut self, x: &[f64], meta: &[f64], cache: &GcCache, grad_y: &[f64]) {
        let n = self.n;
        let h = self.config.hidden;
        self.meta.backward(meta, grad_y);
        // y_i = Σ_c ah1[i,c]·w2[c] + b2.
        for g in grad_y {
            self.b2.g[0] += g;
        }
        let mut g_ah1 = vec![0.0; n * h];
        for i in 0..n {
            for c in 0..h {
                self.w2.g[c] += grad_y[i] * cache.ah1[i * h + c];
                g_ah1[i * h + c] = grad_y[i] * self.w2.w[c];
            }
        }
        // ah1 = Â h1 → g_h1 = Âᵀ g_ah1 = Â g_ah1.
        let mut g_h1 = self.propagate_back(&g_ah1, h);
        relu_backward(&mut g_h1, &cache.m1);
        // h1 = ax·W1 + b1.
        for i in 0..n {
            for c2 in 0..h {
                let g = g_h1[i * h + c2];
                if g == 0.0 {
                    continue;
                }
                self.b1.g[c2] += g;
                for c1 in 0..IN_CH {
                    self.w1.g[c1 * h + c2] += g * cache.ax[i * IN_CH + c1];
                }
            }
        }
        // No gradient needed w.r.t. the input features.
        let _ = x;
    }

    fn zero_grads(&mut self) {
        self.w1.zero_grad();
        self.b1.zero_grad();
        self.w2.zero_grad();
        self.b2.zero_grad();
        self.meta.weight.zero_grad();
        self.meta.bias.zero_grad();
    }

    fn adam_step(&mut self, t: u64) {
        let lr = self.config.lr;
        self.w1.adam_step(lr, t);
        self.b1.adam_step(lr, t);
        self.w2.adam_step(lr, t);
        self.b2.adam_step(lr, t);
        self.meta.weight.adam_step(lr, t);
        self.meta.bias.adam_step(lr, t);
    }
}

struct GcCache {
    ax: Vec<f64>,
    m1: Vec<bool>,
    ah1: Vec<f64>,
    y: Vec<f64>,
}

impl Predictor for GraphConvNet {
    fn name(&self) -> &'static str {
        "DeepST-GC"
    }

    fn fit(&mut self, series: &DemandSeries, train_days: usize) {
        assert!(
            train_days <= series.days(),
            "GraphConvNet: train_days exceeds series length"
        );
        assert_eq!(series.regions(), self.n, "GraphConvNet: region mismatch");
        assert!(
            train_days >= 2,
            "GraphConvNet: need at least 2 training days"
        );
        let mut max_v = 0.0f64;
        for d in 0..train_days {
            for s in 0..series.slots_per_day() {
                for r in 0..series.regions() {
                    max_v = max_v.max(series.get(d, s, r));
                }
            }
        }
        self.scale = 1.0 / max_v.max(1e-9);
        let start_day = self.config.min_history_days.min(train_days - 1).max(1);
        let mut samples: Vec<(usize, usize)> = (start_day..train_days)
            .flat_map(|d| (0..series.slots_per_day()).map(move |s| (d, s)))
            .collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x6C);
        let n = self.n;
        let mut step = 0u64;
        for _ in 0..self.config.epochs {
            samples.shuffle(&mut rng);
            for chunk in samples.chunks(self.config.batch_size) {
                self.zero_grads();
                let inv = 1.0 / chunk.len() as f64;
                for &(day, slot) in chunk {
                    let x = self.assemble_features(series, day, slot);
                    let meta = self.assemble_meta(day, slot);
                    let cache = self.forward(&x, &meta);
                    let grad_y: Vec<f64> = (0..n)
                        .map(|r| {
                            let t = series.get(day, slot, r) * self.scale;
                            2.0 * (cache.y[r] - t) / n as f64 * inv
                        })
                        .collect();
                    self.backward(&x, &meta, &cache, &grad_y);
                }
                step += 1;
                self.adam_step(step);
            }
        }
        self.fitted = true;
    }

    fn predict(&self, series: &DemandSeries, day: usize, slot: usize) -> Vec<f64> {
        assert!(self.fitted, "GraphConvNet: predict before fit");
        let x = self.assemble_features(series, day, slot);
        let meta = self.assemble_meta(day, slot);
        let cache = self.forward(&x, &meta);
        cache.y.iter().map(|&v| (v / self.scale).max(0.0)).collect()
    }

    fn clone_box(&self) -> Box<dyn Predictor + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrvd_spatial::Point;
    use rand::Rng;

    fn series(days: usize, n: usize, spd: usize) -> DemandSeries {
        let mut rng = StdRng::seed_from_u64(21);
        DemandSeries::from_fn(days, spd, n, |d, t, r| {
            let spatial = 2.0 + (r % 5) as f64;
            let daily = 3.0 + 2.0 * (2.0 * std::f64::consts::PI * t as f64 / spd as f64).cos();
            let dow = if d % 7 == 6 { 0.6 } else { 1.0 };
            (spatial * daily * dow + rng.gen_range(-0.4..0.4)).max(0.0)
        })
    }

    fn ring_adjacency(n: usize) -> Vec<(usize, usize)> {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    }

    fn tiny(n: usize, spd: usize) -> GraphConvNet {
        GraphConvNet::new(
            n,
            &ring_adjacency(n),
            spd,
            GraphConvConfig {
                hidden: 8,
                epochs: 15,
                lr: 4e-3,
                batch_size: 8,
                seed: 3,
                min_history_days: 7,
            },
        )
    }

    #[test]
    fn normalized_adjacency_rows_are_bounded() {
        let net = tiny(6, 4);
        // Row sums of Â are ≤ 1 and > 0 for a connected graph with self
        // loops.
        for i in 0..6 {
            let row: f64 = (0..6).map(|j| net.a_hat[i * 6 + j]).sum();
            assert!(row > 0.0 && row <= 1.0 + 1e-9, "row {i} sums to {row}");
        }
        // Symmetry.
        for i in 0..6 {
            for j in 0..6 {
                assert!((net.a_hat[i * 6 + j] - net.a_hat[j * 6 + i]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn training_improves_over_initialization() {
        let spd = 8;
        let s = series(20, 10, spd);
        let mut net = tiny(10, spd);
        net.scale = 1.0 / s.max_value();
        // Initial squared error on held-out day.
        let err = |net: &GraphConvNet, fitted: bool| -> f64 {
            let mut e = 0.0;
            for slot in 0..spd {
                let truth: Vec<f64> = (0..10).map(|r| s.get(18, slot, r)).collect();
                let pred = if fitted {
                    net.predict(&s, 18, slot)
                } else {
                    let x = net.assemble_features(&s, 18, slot);
                    let meta = net.assemble_meta(18, slot);
                    net.forward(&x, &meta)
                        .y
                        .iter()
                        .map(|&v| (v / net.scale).max(0.0))
                        .collect()
                };
                for r in 0..10 {
                    e += (pred[r] - truth[r]).powi(2);
                }
            }
            e
        };
        let before = err(&net, false);
        net.fit(&s, 18);
        let after = err(&net, true);
        assert!(after < 0.5 * before, "before {before:.1}, after {after:.1}");
    }

    #[test]
    fn gradient_check_on_w1_and_w2() {
        let spd = 4;
        let s = series(10, 6, spd);
        let mut net = tiny(6, spd);
        net.scale = 1.0 / s.max_value();
        let (day, slot) = (8, 2);
        let x = net.assemble_features(&s, day, slot);
        let meta = net.assemble_meta(day, slot);
        let target: Vec<f64> = (0..6).map(|r| s.get(day, slot, r) * net.scale).collect();
        let loss_of = |net: &GraphConvNet| -> f64 {
            let c = net.forward(&x, &meta);
            c.y.iter()
                .zip(&target)
                .map(|(y, t)| (y - t) * (y - t))
                .sum::<f64>()
                / 6.0
        };
        let cache = net.forward(&x, &meta);
        let grad_y: Vec<f64> = (0..6)
            .map(|r| 2.0 * (cache.y[r] - target[r]) / 6.0)
            .collect();
        net.zero_grads();
        net.backward(&x, &meta, &cache, &grad_y);
        let eps = 1e-6;
        for (name, idx, analytic) in [
            ("w1", 5usize, net.w1.g[5]),
            ("w2", 3, net.w2.g[3]),
            ("b1", 2, net.b1.g[2]),
            ("meta", 4, net.meta.weight.g[4]),
        ] {
            let num = {
                let field: &mut Param = match name {
                    "w1" => &mut net.w1,
                    "w2" => &mut net.w2,
                    "b1" => &mut net.b1,
                    _ => &mut net.meta.weight,
                };
                let orig = field.w[idx];
                field.w[idx] = orig + eps;
                let lp = loss_of(&net);
                let field: &mut Param = match name {
                    "w1" => &mut net.w1,
                    "w2" => &mut net.w2,
                    "b1" => &mut net.b1,
                    _ => &mut net.meta.weight,
                };
                field.w[idx] = orig - eps;
                let lm = loss_of(&net);
                let field: &mut Param = match name {
                    "w1" => &mut net.w1,
                    "w2" => &mut net.w2,
                    "b1" => &mut net.b1,
                    _ => &mut net.meta.weight,
                };
                field.w[idx] = orig;
                (lp - lm) / (2.0 * eps)
            };
            assert!(
                (num - analytic).abs() < 1e-5 * (1.0 + num.abs()),
                "{name}[{idx}]: numeric {num}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn grid_constructor_matches_region_count() {
        let grid = mrvd_spatial::Grid::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0), 4, 3);
        let net = GraphConvNet::from_grid(&grid, 6, GraphConvConfig::default());
        assert_eq!(net.n, 12);
    }

    #[test]
    fn does_not_read_the_future() {
        let spd = 4;
        let mut s = series(12, 6, spd);
        let mut net = tiny(6, spd);
        net.fit(&s, 10);
        let before = net.predict(&s, 10, 1);
        for t in 1..spd {
            for r in 0..6 {
                s.set(10, t, r, 1e5);
            }
        }
        assert_eq!(before, net.predict(&s, 10, 1));
    }
}
