//! `DeepStNet` — the from-scratch substitute for DeepST (Zhang et al.,
//! the paper's citation \[31\] and its chosen predictor).
//!
//! Like DeepST it consumes three temporal views of the demand grid —
//! *closeness* (the last 3 slots), *period* (the same slot on the last 3
//! days) and *trend* (the same slot 1–3 weeks back) — as 9 input channels
//! over the 16×16 region grid, plus time-of-day / day-of-week metadata
//! fused through a dense head. Three 3×3 convolutions replace DeepST's
//! residual stack (at 16×16 the receptive field already spans the city);
//! training is Adam on per-slot MSE. See DESIGN.md, substitution #2.

use mrvd_demand::DemandSeries;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};

use super::conv::Conv2d;
use super::dense::Dense;
use super::{relu_backward, relu_inplace};
use crate::Predictor;

/// Number of input channels: 3 closeness + 3 period + 3 trend.
const IN_CH: usize = 9;
/// Days of week for the metadata one-hot.
const DOW: usize = 7;

/// Hyper-parameters of [`DeepStNet`].
#[derive(Debug, Clone)]
pub struct DeepStConfig {
    /// Channels of the two hidden conv layers.
    pub hidden_channels: usize,
    /// Training epochs over all (day, slot) samples.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Mini-batch size (gradients are averaged over the batch).
    pub batch_size: usize,
    /// Seed for init, shuffling.
    pub seed: u64,
    /// First day eligible as a training target; defaults to 21 so the
    /// trend channels are fully populated. Clamped to the available
    /// history at fit time.
    pub min_history_days: usize,
}

impl Default for DeepStConfig {
    fn default() -> Self {
        Self {
            hidden_channels: 16,
            epochs: 20,
            lr: 1e-3,
            batch_size: 8,
            seed: 0xDEE9,
            min_history_days: 21,
        }
    }
}

/// The DeepST-style convolutional demand predictor.
#[derive(Clone)]
pub struct DeepStNet {
    cols: usize,
    rows: usize,
    config: DeepStConfig,
    conv1: Conv2d,
    conv2: Conv2d,
    conv3: Conv2d,
    meta: Dense,
    scale: f64,
    slots_per_day: usize,
    fitted: bool,
}

impl DeepStNet {
    /// Creates a network for a `cols × rows` region grid and
    /// `slots_per_day` time slots (48 at the paper's 30-minute slots).
    ///
    /// # Panics
    /// Panics on zero dimensions.
    pub fn new(cols: usize, rows: usize, slots_per_day: usize, config: DeepStConfig) -> Self {
        assert!(
            cols > 0 && rows > 0,
            "DeepStNet: grid dims must be positive"
        );
        assert!(
            slots_per_day > 0,
            "DeepStNet: slots_per_day must be positive"
        );
        assert!(
            config.hidden_channels > 0,
            "DeepStNet: need hidden channels"
        );
        assert!(
            config.batch_size > 0,
            "DeepStNet: batch_size must be positive"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let h = config.hidden_channels;
        Self {
            cols,
            rows,
            conv1: Conv2d::new(IN_CH, h, &mut rng),
            conv2: Conv2d::new(h, h, &mut rng),
            conv3: Conv2d::new(h, 1, &mut rng),
            meta: Dense::new(slots_per_day + DOW, cols * rows, &mut rng),
            config,
            scale: 1.0,
            slots_per_day,
            fitted: false,
        }
    }

    fn cells(&self) -> usize {
        self.cols * self.rows
    }

    /// Builds the 9-channel input frame for `(day, slot)`; frames that
    /// reach before the start of the series are zero-filled.
    fn assemble_input(&self, series: &DemandSeries, day: usize, slot: usize) -> Vec<f64> {
        let cells = self.cells();
        let spd = series.slots_per_day();
        let gs = day * spd + slot;
        let mut input = vec![0.0; IN_CH * cells];
        let write = |ch: usize, gday: i64, gslot: i64, input: &mut Vec<f64>| {
            if gday < 0 || gslot < 0 {
                return;
            }
            let (d, s) = (gday as usize, gslot as usize);
            for r in 0..cells {
                input[ch * cells + r] = series.get(d, s, r) * self.scale;
            }
        };
        // Closeness: global slots gs−1..gs−3.
        for c in 0..3 {
            let g = gs as i64 - (c as i64 + 1);
            if g >= 0 {
                write(c, g / spd as i64, g % spd as i64, &mut input);
            }
        }
        // Period: same slot, previous days.
        for p in 0..3 {
            write(3 + p, day as i64 - (p as i64 + 1), slot as i64, &mut input);
        }
        // Trend: same slot, previous weeks.
        for q in 0..3 {
            write(
                6 + q,
                day as i64 - 7 * (q as i64 + 1),
                slot as i64,
                &mut input,
            );
        }
        input
    }

    /// One-hot slot-of-day concatenated with one-hot day-of-week.
    fn assemble_meta(&self, day: usize, slot: usize) -> Vec<f64> {
        let mut m = vec![0.0; self.slots_per_day + DOW];
        m[slot % self.slots_per_day] = 1.0;
        m[self.slots_per_day + day % DOW] = 1.0;
        m
    }

    /// Forward pass; returns the output and the caches needed by
    /// [`Self::backward`].
    fn forward(&self, input: &[f64], meta: &[f64]) -> ForwardCache {
        let (h, w) = (self.rows, self.cols);
        let mut a1 = self.conv1.forward(input, h, w);
        let m1 = relu_inplace(&mut a1);
        let mut a2 = self.conv2.forward(&a1, h, w);
        let m2 = relu_inplace(&mut a2);
        let conv_out = self.conv3.forward(&a2, h, w);
        let meta_out = self.meta.forward(meta);
        let y: Vec<f64> = conv_out.iter().zip(&meta_out).map(|(c, m)| c + m).collect();
        ForwardCache { a1, m1, a2, m2, y }
    }

    /// Backward pass from `dL/dy`; accumulates all parameter gradients.
    fn backward(&mut self, input: &[f64], meta: &[f64], cache: &ForwardCache, grad_y: &[f64]) {
        let (h, w) = (self.rows, self.cols);
        // Both heads receive grad_y unchanged (the sum node).
        self.meta.backward(meta, grad_y);
        let mut g2 = self.conv3.backward(&cache.a2, grad_y, h, w);
        relu_backward(&mut g2, &cache.m2);
        let mut g1 = self.conv2.backward(&cache.a1, &g2, h, w);
        relu_backward(&mut g1, &cache.m1);
        let _ = self.conv1.backward(input, &g1, h, w);
    }

    fn zero_grads(&mut self) {
        self.conv1.weight.zero_grad();
        self.conv1.bias.zero_grad();
        self.conv2.weight.zero_grad();
        self.conv2.bias.zero_grad();
        self.conv3.weight.zero_grad();
        self.conv3.bias.zero_grad();
        self.meta.weight.zero_grad();
        self.meta.bias.zero_grad();
    }

    fn adam_step(&mut self, t: u64) {
        let lr = self.config.lr;
        self.conv1.weight.adam_step(lr, t);
        self.conv1.bias.adam_step(lr, t);
        self.conv2.weight.adam_step(lr, t);
        self.conv2.bias.adam_step(lr, t);
        self.conv3.weight.adam_step(lr, t);
        self.conv3.bias.adam_step(lr, t);
        self.meta.weight.adam_step(lr, t);
        self.meta.bias.adam_step(lr, t);
    }

    /// Mean squared error (in normalized units) over the given day range,
    /// exposed for convergence tests.
    pub fn mse(&self, series: &DemandSeries, days: std::ops::Range<usize>) -> f64 {
        let cells = self.cells();
        let mut acc = 0.0;
        let mut n = 0usize;
        for day in days {
            for slot in 0..series.slots_per_day() {
                let input = self.assemble_input(series, day, slot);
                let meta = self.assemble_meta(day, slot);
                let cache = self.forward(&input, &meta);
                for r in 0..cells {
                    let t = series.get(day, slot, r) * self.scale;
                    acc += (cache.y[r] - t) * (cache.y[r] - t);
                    n += 1;
                }
            }
        }
        acc / n as f64
    }
}

/// Intermediate activations kept for the backward pass.
struct ForwardCache {
    a1: Vec<f64>,
    m1: Vec<bool>,
    a2: Vec<f64>,
    m2: Vec<bool>,
    y: Vec<f64>,
}

impl Predictor for DeepStNet {
    fn name(&self) -> &'static str {
        "DeepST"
    }

    fn fit(&mut self, series: &DemandSeries, train_days: usize) {
        assert!(
            train_days <= series.days(),
            "DeepStNet: train_days exceeds series length"
        );
        assert_eq!(
            series.regions(),
            self.cells(),
            "DeepStNet: series regions != grid cells"
        );
        assert_eq!(
            series.slots_per_day(),
            self.slots_per_day,
            "DeepStNet: slots_per_day mismatch"
        );
        assert!(train_days >= 2, "DeepStNet: need at least 2 training days");
        // Normalization from the training range only.
        let mut max_v = 0.0f64;
        for d in 0..train_days {
            for s in 0..series.slots_per_day() {
                for r in 0..series.regions() {
                    max_v = max_v.max(series.get(d, s, r));
                }
            }
        }
        self.scale = 1.0 / max_v.max(1e-9);

        let start_day = self.config.min_history_days.min(train_days - 1).max(1);
        let mut samples: Vec<(usize, usize)> = (start_day..train_days)
            .flat_map(|d| (0..series.slots_per_day()).map(move |s| (d, s)))
            .collect();
        assert!(!samples.is_empty(), "DeepStNet: no training samples");
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x7E57);
        let cells = self.cells();
        let mut step = 0u64;
        for _epoch in 0..self.config.epochs {
            samples.shuffle(&mut rng);
            for chunk in samples.chunks(self.config.batch_size) {
                self.zero_grads();
                let inv = 1.0 / chunk.len() as f64;
                for &(day, slot) in chunk {
                    let input = self.assemble_input(series, day, slot);
                    let meta = self.assemble_meta(day, slot);
                    let cache = self.forward(&input, &meta);
                    let grad_y: Vec<f64> = (0..cells)
                        .map(|r| {
                            let t = series.get(day, slot, r) * self.scale;
                            2.0 * (cache.y[r] - t) / cells as f64 * inv
                        })
                        .collect();
                    self.backward(&input, &meta, &cache, &grad_y);
                }
                step += 1;
                self.adam_step(step);
            }
        }
        self.fitted = true;
    }

    fn predict(&self, series: &DemandSeries, day: usize, slot: usize) -> Vec<f64> {
        assert!(self.fitted, "DeepStNet: predict before fit");
        let input = self.assemble_input(series, day, slot);
        let meta = self.assemble_meta(day, slot);
        let cache = self.forward(&input, &meta);
        cache.y.iter().map(|&v| (v / self.scale).max(0.0)).collect()
    }

    fn clone_box(&self) -> Box<dyn Predictor + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A small synthetic grid series with daily periodicity and a spatial
    /// pattern — the structure DeepST is designed to capture.
    fn synthetic_series(days: usize, cols: usize, rows: usize, spd: usize) -> DemandSeries {
        let mut rng = StdRng::seed_from_u64(77);
        DemandSeries::from_fn(days, spd, cols * rows, |d, t, r| {
            let (x, y) = (r % cols, r / cols);
            let spatial = 3.0 + 2.0 * ((x + y) as f64 / (cols + rows) as f64);
            let daily = 4.0 + 3.0 * (2.0 * std::f64::consts::PI * t as f64 / spd as f64).sin();
            let dow = if d % 7 >= 5 { 0.7 } else { 1.0 };
            (spatial * daily * dow + rng.gen_range(-0.5..0.5)).max(0.0)
        })
    }

    fn tiny_net(spd: usize) -> DeepStNet {
        DeepStNet::new(
            4,
            4,
            spd,
            DeepStConfig {
                hidden_channels: 6,
                epochs: 12,
                lr: 3e-3,
                batch_size: 8,
                seed: 5,
                min_history_days: 7,
            },
        )
    }

    #[test]
    fn training_reduces_mse() {
        let spd = 12;
        let s = synthetic_series(20, 4, 4, spd);
        let mut net = tiny_net(spd);
        // Set scale as fit would, then measure pre-training MSE.
        net.scale = 1.0 / s.max_value();
        let before = net.mse(&s, 16..20);
        net.fit(&s, 16);
        let after = net.mse(&s, 16..20);
        assert!(
            after < 0.5 * before,
            "MSE before {before:.4}, after {after:.4}"
        );
    }

    #[test]
    fn beats_historical_average_on_periodic_data() {
        use crate::ha::HistoricalAverage;
        let spd = 12;
        let s = synthetic_series(24, 4, 4, spd);
        let mut net = tiny_net(spd);
        net.fit(&s, 20);
        let ha = HistoricalAverage;
        let mut nn_err = 0.0;
        let mut ha_err = 0.0;
        for day in 20..24 {
            for slot in 0..spd {
                let truth: Vec<f64> = (0..16).map(|r| s.get(day, slot, r)).collect();
                let np = net.predict(&s, day, slot);
                let hp = ha.predict(&s, day, slot);
                for r in 0..16 {
                    nn_err += (np[r] - truth[r]).powi(2);
                    ha_err += (hp[r] - truth[r]).powi(2);
                }
            }
        }
        assert!(
            nn_err < ha_err,
            "DeepST err {nn_err:.1} vs HA err {ha_err:.1}"
        );
    }

    #[test]
    fn whole_model_gradient_check() {
        // Finite differences through the full conv-conv-conv + meta path.
        let spd = 6;
        let s = synthetic_series(10, 4, 4, spd);
        let mut net = tiny_net(spd);
        net.scale = 1.0 / s.max_value();
        let (day, slot) = (8, 3);
        let input = net.assemble_input(&s, day, slot);
        let meta = net.assemble_meta(day, slot);
        let cells = net.cells();
        let target: Vec<f64> = (0..cells)
            .map(|r| s.get(day, slot, r) * net.scale)
            .collect();
        let loss_of = |net: &DeepStNet| -> f64 {
            let c = net.forward(&input, &meta);
            c.y.iter()
                .zip(&target)
                .map(|(y, t)| (y - t) * (y - t))
                .sum::<f64>()
                / cells as f64
        };
        let cache = net.forward(&input, &meta);
        let grad_y: Vec<f64> = (0..cells)
            .map(|r| 2.0 * (cache.y[r] - target[r]) / cells as f64)
            .collect();
        net.zero_grads();
        net.backward(&input, &meta, &cache, &grad_y);
        let eps = 1e-6;
        // Sample parameters from each tensor.
        let analytic = [
            net.conv1.weight.g[3],
            net.conv2.weight.g[10],
            net.conv3.weight.g[0],
            net.meta.weight.g[5],
            net.conv1.bias.g[0],
            net.meta.bias.g[2],
        ];
        let mut numeric = [0.0f64; 6];
        macro_rules! probe {
            ($i:expr, $field:expr, $idx:expr) => {{
                let orig = $field.w[$idx];
                $field.w[$idx] = orig + eps;
                let lp = loss_of(&net);
                $field.w[$idx] = orig - eps;
                let lm = loss_of(&net);
                $field.w[$idx] = orig;
                numeric[$i] = (lp - lm) / (2.0 * eps);
            }};
        }
        probe!(0, net.conv1.weight, 3);
        probe!(1, net.conv2.weight, 10);
        probe!(2, net.conv3.weight, 0);
        probe!(3, net.meta.weight, 5);
        probe!(4, net.conv1.bias, 0);
        probe!(5, net.meta.bias, 2);
        for i in 0..6 {
            assert!(
                (numeric[i] - analytic[i]).abs() < 1e-5 * (1.0 + numeric[i].abs()),
                "param {i}: numeric {}, analytic {}",
                numeric[i],
                analytic[i]
            );
        }
    }

    #[test]
    fn does_not_read_the_future() {
        let spd = 6;
        let mut s = synthetic_series(12, 4, 4, spd);
        let mut net = tiny_net(spd);
        net.fit(&s, 10);
        let before = net.predict(&s, 10, 2);
        for t in 2..spd {
            for r in 0..16 {
                s.set(10, t, r, 999.0);
            }
        }
        for t in 0..spd {
            for r in 0..16 {
                s.set(11, t, r, 999.0);
            }
        }
        assert_eq!(before, net.predict(&s, 10, 2));
    }

    #[test]
    fn predictions_are_non_negative_counts() {
        let spd = 6;
        let s = synthetic_series(12, 4, 4, spd);
        let mut net = tiny_net(spd);
        net.fit(&s, 10);
        let p = net.predict(&s, 10, 0);
        assert_eq!(p.len(), 16);
        assert!(p.iter().all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let s = DemandSeries::zeros(2, 6, 16);
        tiny_net(6).predict(&s, 1, 0);
    }
}
