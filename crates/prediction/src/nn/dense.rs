//! Fully connected layer.

use rand::Rng;

use super::param::Param;

/// A dense layer `y = W x + b` with `W` stored row-major
/// (`[out_dim, in_dim]`).
#[derive(Debug, Clone)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// Weight matrix, row-major `[out][in]`.
    pub weight: Param,
    /// Output bias.
    pub bias: Param,
}

impl Dense {
    /// A new He-initialized layer.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "Dense: dims must be positive");
        Self {
            in_dim,
            out_dim,
            weight: Param::he_uniform(out_dim * in_dim, in_dim, rng),
            bias: Param::zeros(out_dim),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass.
    ///
    /// # Panics
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "Dense::forward: shape mismatch");
        (0..self.out_dim)
            .map(|o| {
                let row = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
                self.bias.w[o] + row.iter().zip(x).map(|(w, x)| w * x).sum::<f64>()
            })
            .collect()
    }

    /// Backward pass: accumulates parameter gradients, returns `dL/dx`.
    pub fn backward(&mut self, x: &[f64], grad_out: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "Dense::backward: input mismatch");
        assert_eq!(
            grad_out.len(),
            self.out_dim,
            "Dense::backward: grad mismatch"
        );
        let mut grad_in = vec![0.0; self.in_dim];
        for (o, &g) in grad_out.iter().enumerate() {
            self.bias.g[o] += g;
            let row_w = &self.weight.w[o * self.in_dim..(o + 1) * self.in_dim];
            let row_g = &mut self.weight.g[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                row_g[i] += g * x[i];
                grad_in[i] += g * row_w[i];
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn forward_is_matrix_vector_product() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = Dense::new(2, 2, &mut rng);
        d.weight.w = vec![1.0, 2.0, 3.0, 4.0];
        d.bias.w = vec![10.0, 20.0];
        let y = d.forward(&[1.0, -1.0]);
        assert_eq!(y, vec![10.0 - 1.0, 20.0 - 1.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = Dense::new(5, 3, &mut rng);
        let x: Vec<f64> = (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let loss = |d: &Dense, x: &[f64]| -> f64 { d.forward(x).iter().map(|v| 0.5 * v * v).sum() };
        let y = d.forward(&x);
        d.weight.zero_grad();
        d.bias.zero_grad();
        let gx = d.backward(&x, &y);
        let eps = 1e-6;
        for idx in 0..d.weight.len() {
            let orig = d.weight.w[idx];
            d.weight.w[idx] = orig + eps;
            let lp = loss(&d, &x);
            d.weight.w[idx] = orig - eps;
            let lm = loss(&d, &x);
            d.weight.w[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - d.weight.g[idx]).abs() < 1e-6 * (1.0 + num.abs()),
                "weight[{idx}]"
            );
        }
        let mut x = x;
        for idx in 0..x.len() {
            let orig = x[idx];
            x[idx] = orig + eps;
            let lp = loss(&d, &x);
            x[idx] = orig - eps;
            let lm = loss(&d, &x);
            x[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx[idx]).abs() < 1e-6 * (1.0 + num.abs()), "x[{idx}]");
        }
    }
}
