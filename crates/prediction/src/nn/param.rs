//! Learnable parameter buffers with Adam (Kingma & Ba 2015).

use rand::Rng;

/// A flat parameter tensor with its gradient accumulator and Adam moments.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter values.
    pub w: Vec<f64>,
    /// Gradient accumulator; callers add into it during backward passes
    /// and reset with [`Param::zero_grad`].
    pub g: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Param {
    /// Zero-initialized parameters (for biases).
    pub fn zeros(len: usize) -> Self {
        Self {
            w: vec![0.0; len],
            g: vec![0.0; len],
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// He-style uniform initialization in `[-limit, limit]` with
    /// `limit = sqrt(6 / fan_in)`.
    pub fn he_uniform<R: Rng + ?Sized>(len: usize, fan_in: usize, rng: &mut R) -> Self {
        assert!(fan_in > 0, "Param: fan_in must be positive");
        let limit = (6.0 / fan_in as f64).sqrt();
        Self {
            w: (0..len).map(|_| rng.gen_range(-limit..limit)).collect(),
            g: vec![0.0; len],
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.g.iter_mut().for_each(|g| *g = 0.0);
    }

    /// One Adam update with bias correction; `t` is the 1-based step
    /// counter shared across all parameters of the model.
    pub fn adam_step(&mut self, lr: f64, t: u64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let t = t as f64;
        let c1 = 1.0 - B1.powf(t);
        let c2 = 1.0 - B2.powf(t);
        for i in 0..self.w.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * self.g[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * self.g[i] * self.g[i];
            let m_hat = self.m[i] / c1;
            let v_hat = self.v[i] / c2;
            self.w[i] -= lr * m_hat / (v_hat.sqrt() + EPS);
        }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn adam_minimizes_a_quadratic() {
        // Minimize f(w) = Σ (w_i − target_i)²; Adam should converge fast.
        let mut p = Param::zeros(4);
        let target = [1.0, -2.0, 3.0, 0.5];
        for t in 1..=2_000 {
            p.zero_grad();
            let grads: Vec<f64> =
                p.w.iter()
                    .zip(&target)
                    .map(|(w, t)| 2.0 * (w - t))
                    .collect();
            p.g.copy_from_slice(&grads);
            p.adam_step(0.05, t);
        }
        for (i, (w, t)) in p.w.iter().zip(&target).enumerate() {
            assert!((w - t).abs() < 1e-3, "w[{i}] = {} vs {}", w, t);
        }
    }

    #[test]
    fn he_init_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = Param::he_uniform(100, 50, &mut rng);
        let limit = (6.0f64 / 50.0).sqrt();
        assert!(p.w.iter().all(|&w| w.abs() <= limit));
        let mut rng2 = StdRng::seed_from_u64(5);
        let q = Param::he_uniform(100, 50, &mut rng2);
        assert_eq!(p.w, q.w);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::zeros(3);
        p.g = vec![1.0, 2.0, 3.0];
        p.zero_grad();
        assert_eq!(p.g, vec![0.0; 3]);
    }
}
