//! A minimal neural-network kit, implemented from scratch.
//!
//! Just enough machinery to host the paper's DeepST-style demand
//! predictors: flat `f64` parameter buffers with Adam ([`param`]),
//! same-padding 3×3 convolutions ([`conv`]), dense layers ([`dense`]),
//! and the two model definitions ([`deepst`], [`graphconv`]).
//!
//! Backward passes are exact (validated by finite-difference gradient
//! checks in the test suite); there is no autograd — each model wires its
//! own backward chain, which keeps the kit ~small and the data flow
//! explicit.

pub mod conv;
pub mod deepst;
pub mod dense;
pub mod graphconv;
pub mod param;

pub use param::Param;

/// Rectified linear unit applied in place; returns the activation mask
/// needed by [`relu_backward`].
pub fn relu_inplace(x: &mut [f64]) -> Vec<bool> {
    x.iter_mut()
        .map(|v| {
            if *v > 0.0 {
                true
            } else {
                *v = 0.0;
                false
            }
        })
        .collect()
}

/// Propagates gradients through a ReLU given the forward activation mask.
pub fn relu_backward(grad: &mut [f64], mask: &[bool]) {
    assert_eq!(grad.len(), mask.len(), "relu_backward: shape mismatch");
    for (g, &m) in grad.iter_mut().zip(mask) {
        if !m {
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_masks_negatives() {
        let mut x = vec![-1.0, 0.0, 2.0];
        let mask = relu_inplace(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.0]);
        assert_eq!(mask, vec![false, false, true]);
        let mut g = vec![5.0, 5.0, 5.0];
        relu_backward(&mut g, &mask);
        assert_eq!(g, vec![0.0, 0.0, 5.0]);
    }
}
