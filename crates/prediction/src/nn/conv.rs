//! Same-padding 3×3 convolution over channel-major grids.
//!
//! Tensors are flat `f64` slices in `[channel][row][col]` order. Only the
//! 3×3 kernel the DeepST-style nets need is implemented; padding is zero
//! and stride is 1, so spatial dimensions are preserved.

use rand::Rng;

use super::param::Param;

/// A 3×3 convolution layer with bias.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    /// Kernel weights, indexed `[out][in][ky][kx]`.
    pub weight: Param,
    /// Per-output-channel bias.
    pub bias: Param,
}

impl Conv2d {
    /// A new layer with He-initialized kernels.
    pub fn new<R: Rng + ?Sized>(in_ch: usize, out_ch: usize, rng: &mut R) -> Self {
        assert!(in_ch > 0 && out_ch > 0, "Conv2d: channels must be positive");
        let fan_in = in_ch * 9;
        Self {
            in_ch,
            out_ch,
            weight: Param::he_uniform(out_ch * in_ch * 9, fan_in, rng),
            bias: Param::zeros(out_ch),
        }
    }

    /// Input channel count.
    pub fn in_ch(&self) -> usize {
        self.in_ch
    }

    /// Output channel count.
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }

    #[inline]
    fn w_idx(&self, o: usize, i: usize, ky: usize, kx: usize) -> usize {
        ((o * self.in_ch + i) * 3 + ky) * 3 + kx
    }

    /// Forward pass: `input` has shape `[in_ch, h, w]`, output
    /// `[out_ch, h, w]`.
    ///
    /// # Panics
    /// Panics if `input.len() != in_ch * h * w`.
    pub fn forward(&self, input: &[f64], h: usize, w: usize) -> Vec<f64> {
        assert_eq!(
            input.len(),
            self.in_ch * h * w,
            "Conv2d::forward: input shape mismatch"
        );
        let mut out = vec![0.0; self.out_ch * h * w];
        for o in 0..self.out_ch {
            let b = self.bias.w[o];
            for y in 0..h {
                for x in 0..w {
                    let mut acc = b;
                    for i in 0..self.in_ch {
                        let plane = &input[i * h * w..(i + 1) * h * w];
                        for ky in 0..3usize {
                            let yy = y as isize + ky as isize - 1;
                            if yy < 0 || yy >= h as isize {
                                continue;
                            }
                            for kx in 0..3usize {
                                let xx = x as isize + kx as isize - 1;
                                if xx < 0 || xx >= w as isize {
                                    continue;
                                }
                                acc += self.weight.w[self.w_idx(o, i, ky, kx)]
                                    * plane[yy as usize * w + xx as usize];
                            }
                        }
                    }
                    out[o * h * w + y * w + x] = acc;
                }
            }
        }
        out
    }

    /// Backward pass: given `grad_out` (shape `[out_ch, h, w]`) and the
    /// forward `input`, accumulates weight/bias gradients and returns the
    /// gradient with respect to the input.
    pub fn backward(&mut self, input: &[f64], grad_out: &[f64], h: usize, w: usize) -> Vec<f64> {
        assert_eq!(
            grad_out.len(),
            self.out_ch * h * w,
            "Conv2d::backward: grad shape mismatch"
        );
        assert_eq!(
            input.len(),
            self.in_ch * h * w,
            "Conv2d::backward: input shape mismatch"
        );
        let mut grad_in = vec![0.0; input.len()];
        for o in 0..self.out_ch {
            let gplane = &grad_out[o * h * w..(o + 1) * h * w];
            // Bias gradient: sum over the spatial plane.
            self.bias.g[o] += gplane.iter().sum::<f64>();
            for y in 0..h {
                for x in 0..w {
                    let g = gplane[y * w + x];
                    if g == 0.0 {
                        continue;
                    }
                    for i in 0..self.in_ch {
                        for ky in 0..3usize {
                            let yy = y as isize + ky as isize - 1;
                            if yy < 0 || yy >= h as isize {
                                continue;
                            }
                            for kx in 0..3usize {
                                let xx = x as isize + kx as isize - 1;
                                if xx < 0 || xx >= w as isize {
                                    continue;
                                }
                                let pix = i * h * w + yy as usize * w + xx as usize;
                                let widx = self.w_idx(o, i, ky, kx);
                                self.weight.g[widx] += g * input[pix];
                                grad_in[pix] += g * self.weight.w[widx];
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn identity_kernel_passes_through() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 1, &mut rng);
        conv.weight.w.iter_mut().for_each(|w| *w = 0.0);
        // Center tap = 1 → identity.
        conv.weight.w[4] = 1.0;
        let input: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let out = conv.forward(&input, 3, 4);
        assert_eq!(out, input);
    }

    #[test]
    fn box_kernel_sums_neighbourhood() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(1, 1, &mut rng);
        conv.weight.w.iter_mut().for_each(|w| *w = 1.0);
        conv.bias.w[0] = 0.0;
        let input = vec![1.0; 9]; // 3×3 of ones
        let out = conv.forward(&input, 3, 3);
        // Center sees 9 ones; corners see 4; edges see 6.
        assert_eq!(out[4], 9.0);
        assert_eq!(out[0], 4.0);
        assert_eq!(out[1], 6.0);
    }

    #[test]
    fn gradient_check() {
        // Central finite differences vs analytic gradients on a tiny layer.
        let mut rng = StdRng::seed_from_u64(3);
        let (h, w) = (4, 5);
        let mut conv = Conv2d::new(2, 3, &mut rng);
        let input: Vec<f64> = (0..2 * h * w).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // Loss = 0.5 Σ out², so dL/dout = out.
        let loss = |c: &Conv2d, inp: &[f64]| -> f64 {
            c.forward(inp, h, w).iter().map(|v| 0.5 * v * v).sum()
        };
        let out = conv.forward(&input, h, w);
        conv.weight.zero_grad();
        conv.bias.zero_grad();
        let grad_in = conv.backward(&input, &out, h, w);

        let eps = 1e-6;
        // Check a sample of weight gradients.
        for idx in [0usize, 7, 20, 35, conv.weight.len() - 1] {
            let orig = conv.weight.w[idx];
            conv.weight.w[idx] = orig + eps;
            let lp = loss(&conv, &input);
            conv.weight.w[idx] = orig - eps;
            let lm = loss(&conv, &input);
            conv.weight.w[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = conv.weight.g[idx];
            assert!(
                (num - ana).abs() < 1e-5 * (1.0 + num.abs()),
                "weight[{idx}]: numeric {num}, analytic {ana}"
            );
        }
        // Check bias gradients.
        for idx in 0..conv.bias.len() {
            let orig = conv.bias.w[idx];
            conv.bias.w[idx] = orig + eps;
            let lp = loss(&conv, &input);
            conv.bias.w[idx] = orig - eps;
            let lm = loss(&conv, &input);
            conv.bias.w[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - conv.bias.g[idx]).abs() < 1e-5 * (1.0 + num.abs()),
                "bias[{idx}]"
            );
        }
        // Check input gradients.
        let mut input = input;
        for idx in [0usize, 11, 2 * h * w - 1] {
            let orig = input[idx];
            input[idx] = orig + eps;
            let lp = loss(&conv, &input);
            input[idx] = orig - eps;
            let lm = loss(&conv, &input);
            input[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - grad_in[idx]).abs() < 1e-5 * (1.0 + num.abs()),
                "input[{idx}]: numeric {num}, analytic {}",
                grad_in[idx]
            );
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn wrong_input_shape_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let conv = Conv2d::new(1, 1, &mut rng);
        conv.forward(&[0.0; 10], 3, 4);
    }
}
