//! Cross-crate integration tests: a complete (small-scale) reproduction
//! pipeline — generate a day, fit predictors, run every policy in the
//! simulator — checking the qualitative relationships the paper reports.

use mrvd::prelude::*;
use rand::rngs::StdRng;

/// A small but non-trivial scenario: ~8K orders, scarce drivers.
struct Scenario {
    trips: Vec<TripRecord>,
    drivers: Vec<Point>,
    grid: Grid,
    travel: ConstantSpeedModel,
    real_series: DemandSeries,
}

fn scenario(n_drivers: usize) -> Scenario {
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day: 8_000.0,
        seed: 42,
        ..NycLikeConfig::default()
    });
    let trips = gen.generate_day_trips(0);
    let mut rng = StdRng::seed_from_u64(7);
    let drivers = sample_driver_positions(&trips, n_drivers, &mut rng);
    let grid = Grid::nyc_16x16();
    let real_series = count_trips(&trips, &grid);
    Scenario {
        trips,
        drivers,
        grid,
        travel: ConstantSpeedModel::default(),
        real_series,
    }
}

fn run(s: &Scenario, policy: &mut dyn DispatchPolicy) -> SimResult {
    let sim = Simulator::new(SimConfig::default(), &s.travel, &s.grid);
    sim.run(&s.trips, &s.drivers, policy)
}

fn real_oracle(s: &Scenario) -> DemandOracle {
    DemandOracle::real(s.real_series.clone(), 0)
}

#[test]
fn all_policies_complete_a_day_and_conserve_riders() {
    let s = scenario(120);
    let policies: Vec<Box<dyn DispatchPolicy>> = vec![
        Box::new(QueueingPolicy::irg(
            DispatchConfig::default(),
            real_oracle(&s),
        )),
        Box::new(QueueingPolicy::ls(
            DispatchConfig::default(),
            real_oracle(&s),
        )),
        Box::new(QueueingPolicy::short(
            DispatchConfig::default(),
            real_oracle(&s),
        )),
        Box::new(Ltg::default()),
        Box::new(Near::default()),
        Box::new(Rand::new(5)),
        Box::new(Polar::new(
            PolarConfig::default(),
            &real_oracle(&s),
            &s.grid,
            120,
        )),
        Box::new(Upper),
    ];
    for mut p in policies {
        let res = run(&s, p.as_mut());
        assert_eq!(
            res.served + res.reneged + res.still_waiting,
            res.total_riders,
            "{}: rider conservation",
            res.policy
        );
        assert!(res.served > 0, "{}: should serve someone", res.policy);
        let sum: f64 = res.assignments.iter().map(|a| a.revenue).sum();
        assert!(
            (res.total_revenue - sum).abs() < 1e-6,
            "{}: revenue consistency",
            res.policy
        );
    }
}

#[test]
fn upper_dominates_every_real_policy() {
    let s = scenario(100);
    let upper = run(&s, &mut Upper);
    for mut p in [
        Box::new(QueueingPolicy::ls(
            DispatchConfig::default(),
            real_oracle(&s),
        )) as Box<dyn DispatchPolicy>,
        Box::new(Ltg::default()),
        Box::new(Near::default()),
        Box::new(Rand::new(5)),
    ] {
        let res = run(&s, p.as_mut());
        assert!(
            upper.total_revenue >= res.total_revenue,
            "UPPER {} < {} of {}",
            upper.total_revenue,
            res.total_revenue,
            res.policy
        );
    }
}

#[test]
fn queueing_policies_beat_ltg_and_hold_up_against_rand() {
    // The paper's headline ordering (LS ≥ IRG above the baselines) is a
    // full-density effect — the experiment harness reproduces it at paper
    // scale (see EXPERIMENTS.md). At this small CI-friendly scale the
    // queueing policies must still beat LTG and stay within noise of
    // RAND (whose random driver choice gains an accidental rebalancing
    // advantage only in sparse regimes). 150 drivers is the smallest
    // fleet where the ordering is outside realization noise; at 100 the
    // margins are ±0.5% and flip with the RNG stream.
    let s = scenario(150);
    let irg = run(
        &s,
        &mut QueueingPolicy::irg(DispatchConfig::default(), real_oracle(&s)),
    );
    let ls = run(
        &s,
        &mut QueueingPolicy::ls(DispatchConfig::default(), real_oracle(&s)),
    );
    let ltg = run(&s, &mut Ltg::default());
    let rand = run(&s, &mut Rand::new(5));
    assert!(
        irg.total_revenue > ltg.total_revenue,
        "IRG {} vs LTG {}",
        irg.total_revenue,
        ltg.total_revenue
    );
    assert!(
        ls.total_revenue > ltg.total_revenue,
        "LS {} vs LTG {}",
        ls.total_revenue,
        ltg.total_revenue
    );
    assert!(
        irg.total_revenue > 0.97 * rand.total_revenue,
        "IRG {} vs RAND {}",
        irg.total_revenue,
        rand.total_revenue
    );
    assert!(
        ls.total_revenue > 0.97 * rand.total_revenue,
        "LS {} vs RAND {}",
        ls.total_revenue,
        rand.total_revenue
    );
}

#[test]
fn short_serves_at_least_as_many_orders_as_ltg() {
    // Appendix C: SHORT is the served-orders specialist; LTG chases
    // revenue with long trips and serves fewer orders. Like the ordering
    // test above, this needs enough fleet density to sit outside
    // realization noise (at 100 drivers SHORT and LTG tie ±1 rider).
    let s = scenario(150);
    let short = run(
        &s,
        &mut QueueingPolicy::short(DispatchConfig::default(), real_oracle(&s)),
    );
    let ltg = run(&s, &mut Ltg::default());
    assert!(
        short.served >= ltg.served,
        "SHORT {} vs LTG {}",
        short.served,
        ltg.served
    );
}

#[test]
fn more_drivers_mean_more_revenue() {
    // The Figure 7 trend.
    let small = scenario(60);
    let large = scenario(200);
    let r_small = run(
        &small,
        &mut QueueingPolicy::irg(DispatchConfig::default(), real_oracle(&small)),
    );
    let r_large = run(
        &large,
        &mut QueueingPolicy::irg(DispatchConfig::default(), real_oracle(&large)),
    );
    assert!(
        r_large.total_revenue > r_small.total_revenue,
        "200 drivers {} vs 60 drivers {}",
        r_large.total_revenue,
        r_small.total_revenue
    );
    assert!(r_large.served > r_small.served);
}

#[test]
fn idle_estimates_pair_up_for_the_queueing_policies() {
    let s = scenario(120);
    let res = run(
        &s,
        &mut QueueingPolicy::irg(DispatchConfig::default(), real_oracle(&s)),
    );
    let pairs = res.idle_estimate_pairs();
    assert!(
        pairs.len() > 50,
        "need a meaningful sample of (estimate, real) pairs, got {}",
        pairs.len()
    );
    assert!(pairs.iter().all(|&(e, r)| e >= 0.0 && r >= 0.0));
}

#[test]
fn predicted_oracle_end_to_end() {
    // Train HA on 8 history days of counts, then dispatch with IRG-P.
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day: 6_000.0,
        seed: 9,
        ..NycLikeConfig::default()
    });
    let history = gen.generate_counts(9); // days 0..8 = history, day 8 replaced below
    let trips = gen.generate_day_trips(8);
    let grid = Grid::nyc_16x16();
    // Build the full series: history days 0..8 + the realized test day 8.
    let mut series = history;
    let realized = count_trips(&trips, &grid);
    for slot in 0..SLOTS_PER_DAY {
        for r in 0..grid.num_regions() {
            series.set(8, slot, r, realized.get(0, slot, r));
        }
    }
    let mut ha = HistoricalAverage;
    ha.fit(&series, 8);
    let oracle = DemandOracle::predicted(Box::new(ha), series, 8);
    let mut policy = QueueingPolicy::irg(DispatchConfig::default(), oracle);
    assert_eq!(policy.name(), "IRG-P");
    let mut rng = StdRng::seed_from_u64(3);
    let drivers = sample_driver_positions(&trips, 80, &mut rng);
    let travel = ConstantSpeedModel::default();
    let sim = Simulator::new(SimConfig::default(), &travel, &grid);
    let res = sim.run(&trips, &drivers, &mut policy);
    assert!(res.served > 0);
}
