//! Property-based parallel-drain equivalence: the engine's parallel
//! shard execution (`SimConfig::workers > 1` — per-shard event heaps
//! drained by a persistent worker pool between batch barriers, popped
//! keys merged back into global key order before any state transition
//! is applied) must reproduce the sequential run (`workers = 1`)
//! bit-for-bit on random small worlds, for any shard layout and worker
//! count — including every engine counter, the exact renege event
//! times, and worlds dense enough that same-timestamp event keys
//! interleave across shards inside one drain.
//!
//! A mid-run worker-count change is impossible by construction
//! (`SimConfig` is fixed per run, and the pool itself rejects
//! overlapping rounds — pinned by `mrvd-stats`' broadcast tests); what
//! must work is changing the worker count *between* runs over the same
//! world, which the continuation test pins as byte-identical both ways.

use mrvd::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

const DELTA_MS: u64 = 3_000;
const HORIZON_MS: u64 = 3_600_000;

/// A random world drawn from one seed: trips sorted by request time
/// inside the horizon, a driver pool, and a Δ-aligned supply schedule
/// (same idiom as `tests/engine_equivalence.rs`, denser on trips so
/// drains regularly carry several due events at once).
fn random_world(seed: u64) -> (Vec<TripRecord>, Vec<Point>, DriverSchedule) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9A7A);
    let n_trips = rng.gen_range(0usize..70);
    let mut requests: Vec<u64> = (0..n_trips).map(|_| rng.gen_range(0..HORIZON_MS)).collect();
    requests.sort_unstable();
    let pt =
        |rng: &mut StdRng| Point::new(rng.gen_range(-74.02..-73.80), rng.gen_range(40.60..40.90));
    let trips: Vec<TripRecord> = requests
        .into_iter()
        .enumerate()
        .map(|(i, request_ms)| TripRecord {
            id: i as u64,
            request_ms,
            pickup: pt(&mut rng),
            dropoff: pt(&mut rng),
        })
        .collect();
    let pool: Vec<Point> = (0..rng.gen_range(0usize..12))
        .map(|_| pt(&mut rng))
        .collect();
    let n_phases = rng.gen_range(1usize..4);
    let mut phases = vec![(0u64, rng.gen_range(0..=pool.len()))];
    for _ in 1..n_phases {
        let from = rng.gen_range(1..HORIZON_MS / DELTA_MS) * DELTA_MS;
        if phases.iter().all(|&(f, _)| f != from) {
            phases.push((from, rng.gen_range(0..=pool.len())));
        }
    }
    phases.sort_unstable();
    (trips, pool, DriverSchedule::new(phases))
}

/// Everything that must match bit-for-bit across worker counts: the
/// quality outputs (exact renege records included — all engine layouts
/// charge reneges at true deadlines) *and* the engine counters, which
/// the key-order merge makes deterministic too.
type Digest = (
    (usize, usize, usize, u64, usize),
    Vec<(u32, u32, u64, u64, u64, u64)>,
    Vec<(u32, u64, u64)>,
    (usize, usize, usize, usize, usize, usize, usize),
);

fn digest(r: &SimResult) -> Digest {
    (
        (
            r.served,
            r.reneged,
            r.still_waiting,
            r.total_revenue.to_bits(),
            r.batches,
        ),
        r.assignments
            .iter()
            .map(|a| {
                (
                    a.rider.0,
                    a.driver.0,
                    a.batch_ms,
                    a.pickup_ms,
                    a.dropoff_ms,
                    a.revenue.to_bits(),
                )
            })
            .collect(),
        r.reneges
            .iter()
            .map(|x| (x.rider.0, x.request_ms, x.renege_ms))
            .collect(),
        (
            r.ticks_executed,
            r.events_processed,
            r.views_ops,
            r.views_entries_dirtied,
            r.counts_ops,
            r.index_ops,
            r.views_rebuilds_avoided,
        ),
    )
}

/// Runs one world under NEAR with the given shard/worker layout.
fn run_with(
    world: &(Vec<TripRecord>, Vec<Point>, DriverSchedule),
    seed: u64,
    event_shards: usize,
    workers: usize,
) -> SimResult {
    let (trips, pool, schedule) = world;
    let grid = Grid::nyc_16x16();
    let travel = ConstantSpeedModel::default();
    let config = SimConfig {
        batch_interval_ms: DELTA_MS,
        horizon_ms: HORIZON_MS,
        seed,
        event_shards,
        workers,
        ..SimConfig::default()
    };
    let sim = Simulator::new(config, &travel, &grid);
    let mut policy = Near::default();
    sim.run_scheduled(trips, pool, schedule, &mut policy)
}

proptest! {
    /// The tentpole pin: for random worlds × random shard layouts ×
    /// random worker counts, the parallel drain is bit-identical to the
    /// sequential run — outputs and counters alike.
    #[test]
    fn parallel_matches_sequential_on_random_worlds(
        seed in 0u64..40,
        shards in 0usize..6,
        workers in 2usize..9,
    ) {
        let world = random_world(seed);
        let sequential = run_with(&world, seed, shards, 1);
        let parallel = run_with(&world, seed, shards, workers);
        prop_assert_eq!(
            digest(&sequential),
            digest(&parallel),
            "seed {} shards {} workers {} diverged",
            seed,
            shards,
            workers
        );
    }
}

/// Interleaved-key coverage: bursts of same-timestamp requests from
/// scattered pickup points put same-time deadline keys (and the dropoff
/// keys of whatever gets served) into *different* shards, so one drain
/// round pops from several shards and the barrier merge must
/// reconstruct the global `(time, priority, id)` order — ids are the
/// only tiebreak. Forced small fleet keeps plenty of reneges in play.
#[test]
fn interleaved_same_time_keys_across_shards_stay_ordered() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let pt =
        |rng: &mut StdRng| Point::new(rng.gen_range(-74.02..-73.80), rng.gen_range(40.60..40.90));
    let mut trips = Vec::new();
    for burst in 0..12u64 {
        let request_ms = burst * 240_000; // a burst every 4 minutes
        for _ in 0..8 {
            trips.push(TripRecord {
                id: trips.len() as u64,
                request_ms,
                pickup: pt(&mut rng),
                dropoff: pt(&mut rng),
            });
        }
    }
    let pool: Vec<Point> = (0..3).map(|_| pt(&mut rng)).collect();
    let world = (trips, pool, DriverSchedule::constant(3));
    for shards in [2, 4, 7] {
        let sequential = run_with(&world, 7, shards, 1);
        assert!(
            sequential.reneged > 0 && sequential.served > 0,
            "burst world must exercise both deadline and dropoff keys"
        );
        for workers in [2, 3, 8] {
            let parallel = run_with(&world, 7, shards, workers);
            assert_eq!(
                digest(&sequential),
                digest(&parallel),
                "shards {shards} workers {workers} diverged on the burst world"
            );
        }
    }
}

/// Changing the worker count *between* runs continues cleanly: the same
/// world run at workers 2 → 8 → 2 produces three byte-identical
/// results, and the final run matches the first exactly (each run owns
/// its pool — nothing leaks across runs). The mid-run change case
/// cannot arise: `SimConfig` is immutable per run and the broadcast
/// pool rejects overlapping rounds (pinned in `mrvd-stats`).
#[test]
fn worker_count_change_between_runs_continues_cleanly() {
    let world = random_world(11);
    let first = run_with(&world, 11, 0, 2);
    let second = run_with(&world, 11, 0, 8);
    let third = run_with(&world, 11, 0, 2);
    assert_eq!(digest(&first), digest(&second), "workers 2 vs 8 diverged");
    assert_eq!(digest(&second), digest(&third), "workers 8 vs 2 diverged");
    assert_eq!(digest(&first), digest(&run_with(&world, 11, 0, 1)));
}
