//! Cross-crate direction checks on the built-in scenarios: the paper's
//! qualitative policy ordering on the baseline weekday, and the expected
//! response of every policy to a supply shock. These are sanity
//! directions, not knife-edge margins — each assertion has slack wide
//! enough to survive RNG-stream changes but narrow enough to catch a
//! broken dispatcher or scenario pipeline.

use mrvd::scenario::{baseline_weekday, driver_shortage, run_scenario, SweepPolicy};

#[test]
fn queueing_policy_matches_best_baseline_served_rate_on_baseline_weekday() {
    // SHORT is the paper's served-orders specialist (Appendix C); on the
    // 150-driver baseline weekday its served-rider rate must be at least
    // that of the best simple baseline (1% slack absorbs realization
    // noise at this density; the seeded run currently clears the best
    // baseline outright). Δ = 9 s (a paper Figure 8 sweep point) keeps
    // the three debug-mode full-day simulations under the time budget
    // without changing the ordering.
    let mut spec = baseline_weekday();
    spec.sim.batch_interval_ms = Some(9_000);
    let workload = spec.materialize();
    let short = run_scenario(&workload, SweepPolicy::ShortReal);
    let ltg = run_scenario(&workload, SweepPolicy::Ltg);
    let near = run_scenario(&workload, SweepPolicy::Near);
    let best_baseline = ltg.service_rate().max(near.service_rate());
    assert!(
        short.service_rate() >= 0.99 * best_baseline,
        "SHORT-R rate {:.4} fell below best baseline {:.4} (LTG {:.4}, NEAR {:.4})",
        short.service_rate(),
        best_baseline,
        ltg.service_rate(),
        near.service_rate()
    );
    assert!(short.served > 0 && ltg.served > 0 && near.served > 0);
}

#[test]
fn driver_shortage_strictly_increases_reneging_for_every_policy() {
    // Same demand, 90→60 drivers instead of 150: every policy must lose
    // strictly more riders to reneging. Scaled to 30% volume with Δ = 9 s
    // to keep the six debug-mode simulations fast; the direction is
    // scale-free.
    let scaled = |mut spec: mrvd::scenario::ScenarioSpec| {
        spec = spec.scaled(0.3);
        spec.sim.batch_interval_ms = Some(9_000);
        spec.materialize()
    };
    let baseline = scaled(baseline_weekday());
    let shortage = scaled(driver_shortage());
    for policy in [SweepPolicy::IrgReal, SweepPolicy::Ltg, SweepPolicy::Near] {
        let full = run_scenario(&baseline, policy);
        let short = run_scenario(&shortage, policy);
        assert!(
            short.reneged > full.reneged,
            "{}: shortage reneged {} <= baseline reneged {}",
            policy.label(),
            short.reneged,
            full.reneged
        );
        assert_eq!(
            short.total_riders, full.total_riders,
            "demand must be identical across the supply shock"
        );
    }
}
