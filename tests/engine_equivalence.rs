//! Property-based engine equivalence: the event-driven core must match
//! the legacy per-Δ batch loop bit-for-bit on random small worlds —
//! random trips, random fleets, random Δ-aligned shift schedules —
//! across every policy family (greedy baselines, the seeded-RNG RAND,
//! the queueing policy with a real oracle, the stateful POLAR
//! comparator, and the teleporting UPPER bound).

use mrvd::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

const DELTA_MS: u64 = 3_000;
const HORIZON_MS: u64 = 3_600_000;

/// A random world drawn from one seed: trips sorted by request time
/// inside the horizon, a driver pool, and a Δ-aligned supply schedule.
fn random_world(seed: u64) -> (Vec<TripRecord>, Vec<Point>, DriverSchedule) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_trips = rng.gen_range(0usize..45);
    let mut requests: Vec<u64> = (0..n_trips).map(|_| rng.gen_range(0..HORIZON_MS)).collect();
    requests.sort_unstable();
    let pt =
        |rng: &mut StdRng| Point::new(rng.gen_range(-74.02..-73.80), rng.gen_range(40.60..40.90));
    let trips: Vec<TripRecord> = requests
        .into_iter()
        .enumerate()
        .map(|(i, request_ms)| TripRecord {
            id: i as u64,
            request_ms,
            pickup: pt(&mut rng),
            dropoff: pt(&mut rng),
        })
        .collect();
    let pool: Vec<Point> = (0..rng.gen_range(0usize..9))
        .map(|_| pt(&mut rng))
        .collect();
    // 1–3 phases starting at 0, later ones Δ-aligned (the legacy loop
    // quantizes shift changes to batch boundaries, so alignment is the
    // exact-equivalence regime; the built-ins are all Δ-aligned too).
    let n_phases = rng.gen_range(1usize..4);
    let mut phases = vec![(0u64, rng.gen_range(0..=pool.len()))];
    for _ in 1..n_phases {
        let from = rng.gen_range(1..HORIZON_MS / DELTA_MS) * DELTA_MS;
        if phases.iter().all(|&(f, _)| f != from) {
            phases.push((from, rng.gen_range(0..=pool.len())));
        }
    }
    phases.sort_unstable();
    (trips, pool, DriverSchedule::new(phases))
}

/// Everything that must match bit-for-bit between the two engines.
type Digest = (
    usize,
    usize,
    usize,
    u64,
    Vec<(u32, u32, u64, u64)>,
    Vec<u32>,
);

fn digest(r: &SimResult) -> Digest {
    let mut reneged_ids: Vec<u32> = r.reneges.iter().map(|x| x.rider.0).collect();
    reneged_ids.sort_unstable();
    (
        r.served,
        r.reneged,
        r.still_waiting,
        r.total_revenue.to_bits(),
        r.assignments
            .iter()
            .map(|a| (a.rider.0, a.driver.0, a.batch_ms, a.pickup_ms))
            .collect(),
        reneged_ids,
    )
}

fn policies(
    seed: u64,
    series: &DemandSeries,
    grid: &Grid,
    n_drivers: usize,
) -> Vec<Box<dyn DispatchPolicy>> {
    vec![
        Box::new(Near::default()),
        Box::new(Ltg::default()),
        Box::new(Rand::new(seed ^ 0xABCD)),
        Box::new(QueueingPolicy::irg(
            DispatchConfig::default(),
            DemandOracle::real(series.clone(), 0),
        )),
        // The same policy on the verbatim eager rate path — the engine
        // differential must hold for both rate estimators.
        Box::new(QueueingPolicy::irg(
            DispatchConfig {
                reference_rates: true,
                ..DispatchConfig::default()
            },
            DemandOracle::real(series.clone(), 0),
        )),
        // POLAR carries cross-batch state (the slot-rolled blueprint
        // budget), so it exercises the skip-exactness argument hardest.
        Box::new(Polar::new(
            PolarConfig::default(),
            &DemandOracle::real(series.clone(), 0),
            grid,
            n_drivers,
        )),
        Box::new(Upper),
    ]
}

proptest! {
    #[test]
    fn event_core_matches_reference_on_random_worlds(seed in 0u64..48) {
        let (trips, pool, schedule) = random_world(seed);
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let series = count_trips(&trips, &grid);
        let config = SimConfig {
            batch_interval_ms: DELTA_MS,
            horizon_ms: HORIZON_MS,
            seed,
            ..SimConfig::default()
        };
        let sim = Simulator::new(config, &travel, &grid);
        for (fast_p, slow_p) in policies(seed, &series, &grid, pool.len())
            .into_iter()
            .zip(policies(seed, &series, &grid, pool.len()))
        {
            let mut fast_p = fast_p;
            let mut slow_p = slow_p;
            let name = fast_p.name();
            let fast = sim.run_scheduled(&trips, &pool, &schedule, fast_p.as_mut());
            let slow = sim.run_scheduled_reference(&trips, &pool, &schedule, slow_p.as_mut());
            prop_assert_eq!(
                digest(&fast),
                digest(&slow),
                "seed {} policy {} diverged",
                seed,
                name
            );
            prop_assert!(fast.ticks_executed <= slow.ticks_executed);
            // Every executed batch in the event core runs off the live
            // views (zero full scans); the reference loop scan-builds its
            // views and reports no live-view activity at all.
            prop_assert_eq!(fast.views_rebuilds_avoided, fast.ticks_executed);
            prop_assert!(fast.views_entries_dirtied <= 2 * fast.views_ops);
            prop_assert_eq!(slow.views_ops, 0);
            prop_assert_eq!(slow.views_entries_dirtied, 0);
            prop_assert_eq!(slow.views_rebuilds_avoided, 0);
            // Exact renege times are never later than the legacy's
            // quantized ones, and never more than Δ earlier (record
            // order may differ inside one batch interval, so join by
            // rider).
            let slow_by_rider: std::collections::HashMap<u32, u64> = slow
                .reneges
                .iter()
                .map(|x| (x.rider.0, x.renege_ms))
                .collect();
            for f in &fast.reneges {
                let s = slow_by_rider[&f.rider.0];
                prop_assert!(f.renege_ms <= s, "exact {} after quantized {}", f.renege_ms, s);
                prop_assert!(s - f.renege_ms <= DELTA_MS);
            }
        }
    }
}
