//! Tier-1 gate: the workspace must be determinism-lint-clean.
//!
//! Runs the full `mrvd-lint` scan over the repository and fails on any
//! unsuppressed finding — the same check CI runs and the `mrvd-lint`
//! binary reports. A finding here means either fix the site or add a
//! reasoned `// lint:allow(RULE): …` pragma / `lint.toml` entry.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = mrvd_lint::run_workspace(root).expect("scan the workspace");
    assert!(
        report.files_scanned > 100,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    let gating: Vec<_> = report.unsuppressed().collect();
    assert!(
        gating.is_empty(),
        "{} unsuppressed determinism finding(s):\n{}",
        gating.len(),
        gating
            .iter()
            .map(|f| format!("  {}:{}: {} {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_suppression_carries_a_reason() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = mrvd_lint::run_workspace(root).expect("scan the workspace");
    for f in &report.findings {
        if let Some(s) = &f.suppressed {
            let reason = match s {
                mrvd_lint::Suppression::Pragma { reason } => reason,
                mrvd_lint::Suppression::Config { reason, .. } => reason,
            };
            assert!(
                !reason.trim().is_empty(),
                "{}:{}: suppression without a reason",
                f.path,
                f.line
            );
        }
    }
}
