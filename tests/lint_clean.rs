//! Tier-1 gate: the workspace must be determinism-lint-clean.
//!
//! Runs the full `mrvd-lint` scan over the repository and fails on any
//! unsuppressed finding — the same check CI runs and the `mrvd-lint`
//! binary reports. A finding here means either fix the site or add a
//! reasoned `// lint:allow(RULE): …` pragma / `lint.toml` entry.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = mrvd_lint::run_workspace(root).expect("scan the workspace");
    assert!(
        report.files_scanned > 100,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    let gating: Vec<_> = report.unsuppressed().collect();
    assert!(
        gating.is_empty(),
        "{} unsuppressed determinism finding(s):\n{}",
        gating.len(),
        gating
            .iter()
            .map(|f| format!("  {}:{}: {} {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The engine crate — including the new parallel drain module — stays
/// determinism-lint-clean with a *pinned* suppression set: the two
/// long-standing D002 pragmas on the engine's and reference loop's
/// batch wall-clock timers,
/// nothing from `lint.toml`, and nothing at all in `parallel.rs`
/// (worker scheduling is timing-dependent, but results must not be —
/// the merge sorts popped keys back into the deterministic order, so
/// the module needs no nondeterminism waivers).
#[test]
fn sim_crate_suppression_set_is_pinned() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = mrvd_lint::run_workspace(root).expect("scan the workspace");
    let sim: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.path.starts_with("crates/sim/src/"))
        .collect();
    let unsuppressed: Vec<_> = sim.iter().filter(|f| f.suppressed.is_none()).collect();
    assert!(
        unsuppressed.is_empty(),
        "unsuppressed finding(s) in crates/sim/src/: {:?}",
        unsuppressed
    );
    let suppressed: Vec<(String, String)> = sim
        .iter()
        .filter(|f| f.suppressed.is_some())
        .map(|f| (f.path.clone(), f.rule.clone()))
        .collect();
    assert_eq!(
        suppressed,
        vec![
            ("crates/sim/src/engine.rs".to_string(), "D002".to_string()),
            (
                "crates/sim/src/reference.rs".to_string(),
                "D002".to_string()
            ),
        ],
        "the sim crate's suppression set changed — new waivers need review"
    );
    assert!(
        sim.iter()
            .all(|f| !matches!(&f.suppressed, Some(mrvd_lint::Suppression::Config { .. }))),
        "crates/sim must not be suppressed via lint.toml"
    );
    assert!(
        !sim.iter().any(|f| f.path.ends_with("parallel.rs")),
        "parallel.rs must stay pragma-free and finding-free"
    );
}

#[test]
fn every_suppression_carries_a_reason() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = mrvd_lint::run_workspace(root).expect("scan the workspace");
    for f in &report.findings {
        if let Some(s) = &f.suppressed {
            let reason = match s {
                mrvd_lint::Suppression::Pragma { reason } => reason,
                mrvd_lint::Suppression::Config { reason, .. } => reason,
            };
            assert!(
                !reason.trim().is_empty(),
                "{}:{}: suppression without a reason",
                f.path,
                f.line
            );
        }
    }
}
