//! Tier-1 gate: the workspace must be determinism-lint-clean.
//!
//! Runs the full `mrvd-lint` scan — flat D rules *and* the call-graph C
//! rules over the worker-reachable closure of the `lint.toml [roots]` —
//! and fails on any unsuppressed finding: the same check CI runs and
//! the `mrvd-lint` binary reports. A finding here means either fix the
//! site or add a reasoned `// lint:allow(RULE): …` pragma / `lint.toml`
//! entry (C rules accept pragmas only).

use std::path::Path;

fn scan() -> mrvd_lint::Scan {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    mrvd_lint::scan_workspace(root).expect("scan the workspace")
}

#[test]
fn workspace_is_lint_clean() {
    let report = scan().report;
    assert!(
        report.files_scanned > 100,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    let gating: Vec<_> = report.unsuppressed().collect();
    assert!(
        gating.is_empty(),
        "{} unsuppressed determinism finding(s):\n{}",
        gating.len(),
        gating
            .iter()
            .map(|f| format!("  {}:{}: {} {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The parallel machinery stays lint-clean with a *pinned* waiver set:
/// every C002 the worker-reachability pass finds in the two parallel
/// modules carries a site-level pragma whose justification is reviewed
/// here by (path, rule) — growing this list is a reviewable event, and
/// nothing in either module may hide behind a `lint.toml` path prefix.
#[test]
fn parallel_module_waiver_set_is_pinned() {
    let report = scan().report;
    let parallel: Vec<_> = report
        .findings
        .iter()
        .filter(|f| {
            f.path == "crates/sim/src/parallel.rs" || f.path == "crates/stats/src/parallel.rs"
        })
        .collect();
    let unsuppressed: Vec<_> = parallel.iter().filter(|f| f.suppressed.is_none()).collect();
    assert!(
        unsuppressed.is_empty(),
        "unsuppressed finding(s) in the parallel modules: {unsuppressed:?}"
    );
    let mut waivers: Vec<(String, String)> = parallel
        .iter()
        .map(|f| (f.path.clone(), f.rule.clone()))
        .collect();
    waivers.sort();
    assert_eq!(
        waivers,
        vec![
            // outs[w] (worker-id bound), s-as-u32 (shard count asserted
            // <= u32::MAX), and the two tournament shard-index locks.
            ("crates/sim/src/parallel.rs".to_string(), "C002".to_string()),
            ("crates/sim/src/parallel.rs".to_string(), "C002".to_string()),
            ("crates/sim/src/parallel.rs".to_string(), "C002".to_string()),
            ("crates/sim/src/parallel.rs".to_string(), "C002".to_string()),
            // job.expect (run() orders job-before-round under one lock)
            // and the three deliberate fail-fast/propagation panics.
            (
                "crates/stats/src/parallel.rs".to_string(),
                "C002".to_string()
            ),
            (
                "crates/stats/src/parallel.rs".to_string(),
                "C002".to_string()
            ),
            (
                "crates/stats/src/parallel.rs".to_string(),
                "C002".to_string()
            ),
            (
                "crates/stats/src/parallel.rs".to_string(),
                "C002".to_string()
            ),
        ],
        "the parallel modules' waiver set changed — new waivers need review"
    );
    assert!(
        parallel
            .iter()
            .all(|f| matches!(&f.suppressed, Some(mrvd_lint::Suppression::Pragma { .. }))),
        "parallel-module waivers must be site-level pragmas, never lint.toml entries"
    );
    // Every waiver is a C002 with a chain back to a declared root.
    for f in &parallel {
        assert!(
            !f.chain.is_empty(),
            "{}:{}: worker-reachable finding without a call chain",
            f.path,
            f.line
        );
    }
}

/// The engine crate keeps its two long-standing D002 pragmas (batch
/// wall-clock timers) and gains nothing else outside `parallel.rs`.
#[test]
fn sim_crate_suppression_set_is_pinned() {
    let report = scan().report;
    let sim: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.path.starts_with("crates/sim/src/") && !f.path.ends_with("parallel.rs"))
        .collect();
    let unsuppressed: Vec<_> = sim.iter().filter(|f| f.suppressed.is_none()).collect();
    assert!(
        unsuppressed.is_empty(),
        "unsuppressed finding(s) in crates/sim/src/: {unsuppressed:?}"
    );
    let suppressed: Vec<(String, String)> = sim
        .iter()
        .filter(|f| f.suppressed.is_some())
        .map(|f| (f.path.clone(), f.rule.clone()))
        .collect();
    assert_eq!(
        suppressed,
        vec![
            ("crates/sim/src/engine.rs".to_string(), "D002".to_string()),
            (
                "crates/sim/src/reference.rs".to_string(),
                "D002".to_string()
            ),
        ],
        "the sim crate's suppression set changed — new waivers need review"
    );
    assert!(
        sim.iter()
            .all(|f| !matches!(&f.suppressed, Some(mrvd_lint::Suppression::Config { .. }))),
        "crates/sim must not be suppressed via lint.toml"
    );
}

#[test]
fn every_suppression_carries_a_reason() {
    let report = scan().report;
    for f in &report.findings {
        if let Some(s) = &f.suppressed {
            let reason = match s {
                mrvd_lint::Suppression::Pragma { reason } => reason,
                mrvd_lint::Suppression::Config { reason, .. } => reason,
            };
            assert!(
                !reason.trim().is_empty(),
                "{}:{}: suppression without a reason",
                f.path,
                f.line
            );
        }
    }
}

/// The JSON artifacts are schema-versioned and the reachable set is
/// sane: all four declared roots resolve, the closure is non-trivial,
/// and the pool's worker-loop internals are inside it.
#[test]
fn report_schema_and_reachable_set_are_sane() {
    let scan = scan();
    let json = scan.report.render_json();
    assert!(
        json.contains(&format!(
            "\"schema_version\": {}",
            mrvd_lint::SCHEMA_VERSION
        )),
        "LINT_report.json must carry the schema version"
    );
    let cg = &scan.callgraph_json;
    assert!(cg.contains("\"schema_version\": 1"));
    // No P005: every [roots] fn matched a workspace function.
    assert!(
        !scan.report.findings.iter().any(|f| f.rule == "P005"),
        "stale [roots] entry: {:?}",
        scan.report
            .findings
            .iter()
            .filter(|f| f.rule == "P005")
            .collect::<Vec<_>>()
    );
    for root in [
        "ShardSlots::drain_worker",
        "BroadcastPool::new",
        "BroadcastPool::run",
        "ParallelQueue::drain_due",
    ] {
        assert!(cg.contains(root), "root `{root}` missing from callgraph");
    }
    // The drain path's helpers are in the closure.
    for reachable_fn in ["ParallelQueue::peek", "relock"] {
        assert!(
            cg.contains(reachable_fn),
            "`{reachable_fn}` should be worker-reachable"
        );
    }
}
