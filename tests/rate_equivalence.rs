//! Differential battery for the incremental rate path: the engine's live
//! per-region counts and the lazy `RateTracker` must reproduce the
//! verbatim eager reference estimator (`estimate_rates` + the full
//! expected-idle-time table) bit-for-bit over random event sequences —
//! arrivals, assignments, dropoffs, reneges and shift changes — and the
//! queueing policies must emit byte-identical assignments whichever rate
//! path they run.

use mrvd::core::{estimate_rates, RateTracker};
use mrvd::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

const DELTA_MS: u64 = 3_000;
const HORIZON_MS: u64 = 1_800_000;

/// A random world drawn from one seed: trips sorted by request time
/// inside the horizon, a driver pool, and a Δ-aligned supply schedule
/// (the same recipe as the engine-equivalence battery).
fn random_world(seed: u64) -> (Vec<TripRecord>, Vec<Point>, DriverSchedule) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A7E);
    let n_trips = rng.gen_range(0usize..40);
    let mut requests: Vec<u64> = (0..n_trips).map(|_| rng.gen_range(0..HORIZON_MS)).collect();
    requests.sort_unstable();
    let pt =
        |rng: &mut StdRng| Point::new(rng.gen_range(-74.02..-73.80), rng.gen_range(40.60..40.90));
    let trips: Vec<TripRecord> = requests
        .into_iter()
        .enumerate()
        .map(|(i, request_ms)| TripRecord {
            id: i as u64,
            request_ms,
            pickup: pt(&mut rng),
            dropoff: pt(&mut rng),
        })
        .collect();
    let pool: Vec<Point> = (0..rng.gen_range(0usize..8))
        .map(|_| pt(&mut rng))
        .collect();
    let n_phases = rng.gen_range(1usize..4);
    let mut phases = vec![(0u64, rng.gen_range(0..=pool.len()))];
    for _ in 1..n_phases {
        let from = rng.gen_range(1..HORIZON_MS / DELTA_MS) * DELTA_MS;
        if phases.iter().all(|&(f, _)| f != from) {
            phases.push((from, rng.gen_range(0..=pool.len())));
        }
    }
    phases.sort_unstable();
    (trips, pool, DriverSchedule::new(phases))
}

/// A first-fit policy that, at every executed batch, pins the engine's
/// live counts and the incremental tracker against the verbatim eager
/// reference estimator for *every* region — counts, λ/μ/K bits and
/// lazy-vs-eager expected idle times.
struct RateAudit {
    cfg: DispatchConfig,
    oracle: DemandOracle,
    tracker: RateTracker,
    checks: usize,
    batches_with_busy: usize,
}

impl RateAudit {
    fn new(series: DemandSeries) -> Self {
        Self {
            cfg: DispatchConfig::default(),
            oracle: DemandOracle::real(series, 0),
            tracker: RateTracker::new(),
            checks: 0,
            batches_with_busy: 0,
        }
    }
}

impl DispatchPolicy for RateAudit {
    fn name(&self) -> String {
        "rate-audit".into()
    }

    fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
        let upcoming = self.oracle.upcoming_riders(ctx.now_ms, self.cfg.tc_ms);
        let est = estimate_rates(ctx, &upcoming, &self.cfg);
        let ets = est.expected_idle_times(&self.cfg);
        // The event engine always supplies consistent live counts.
        let rc = ctx.region_counts.expect("engine must hand live counts");
        assert_eq!(
            rc.totals(),
            (ctx.riders.len(), ctx.drivers.len(), ctx.busy.len()),
            "live counts totals diverged from the views at {}",
            ctx.now_ms
        );
        // …and the context's three slices must *be* the live views — the
        // engine stopped scan-building them, there is no other source.
        let views = ctx.views.expect("engine must hand live views");
        assert!(
            std::ptr::eq(views.waiting(), ctx.riders)
                && std::ptr::eq(views.available(), ctx.drivers)
                && std::ptr::eq(views.busy(), ctx.busy),
            "context slices are not the live views at {}",
            ctx.now_ms
        );
        self.tracker.begin_batch(ctx, &upcoming, &self.cfg);
        for (k, et_eager) in ets.iter().enumerate() {
            assert_eq!(
                self.tracker.waiting()[k],
                est.waiting[k],
                "waiting[{k}] at {}",
                ctx.now_ms
            );
            assert_eq!(
                self.tracker.available()[k],
                est.available[k],
                "available[{k}] at {}",
                ctx.now_ms
            );
            assert_eq!(
                self.tracker.rejoining()[k],
                est.rejoining[k],
                "rejoining[{k}] at {}",
                ctx.now_ms
            );
            assert_eq!(
                self.tracker.lambda()[k].to_bits(),
                est.lambda[k].to_bits(),
                "lambda[{k}] at {}",
                ctx.now_ms
            );
            assert_eq!(
                self.tracker.mu()[k].to_bits(),
                est.mu[k].to_bits(),
                "mu[{k}] at {}",
                ctx.now_ms
            );
            assert_eq!(
                self.tracker.capacity_k()[k],
                est.capacity_k[k],
                "capacity_k[{k}] at {}",
                ctx.now_ms
            );
            // Lazy ET == eager ET, bit for bit, on every region either
            // path can evaluate.
            assert_eq!(
                self.tracker.et(k, &self.cfg).to_bits(),
                et_eager.to_bits(),
                "et[{k}] at {}",
                ctx.now_ms
            );
        }
        self.checks += 1;
        self.batches_with_busy += usize::from(!ctx.busy.is_empty());
        // First-fit assignments keep the event stream rich: dropoffs,
        // rejoin-window churn, busy retirements under ramp-downs.
        let mut taken = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in ctx.riders {
            let best = ctx
                .drivers
                .iter()
                .filter(|d| !taken.contains(&d.id) && ctx.is_valid_pair(r, d))
                .min_by_key(|d| ctx.travel.travel_time_ms(d.pos, r.pickup));
            if let Some(d) = best {
                taken.insert(d.id);
                out.push(Assignment {
                    rider: r.id,
                    driver: d.id,
                    estimated_idle_s: None,
                });
            }
        }
        out
    }
}

proptest! {
    /// The tentpole equivalence: over random event sequences the live
    /// counts, the tracker's rates and the lazily evaluated idle times
    /// all match the eager reference estimator on every executed batch.
    #[test]
    fn live_counts_and_tracker_match_reference_on_random_worlds(seed in 0u64..32) {
        let (trips, pool, schedule) = random_world(seed);
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let series = count_trips(&trips, &grid);
        let config = SimConfig {
            batch_interval_ms: DELTA_MS,
            horizon_ms: HORIZON_MS,
            seed,
            ..SimConfig::default()
        };
        let sim = Simulator::new(config, &travel, &grid);
        let mut audit = RateAudit::new(series);
        let result = sim.run_scheduled(&trips, &pool, &schedule, &mut audit);
        prop_assert_eq!(audit.checks, result.ticks_executed);
        let stats = audit.tracker.stats();
        prop_assert_eq!(
            stats.live_batches, stats.batches,
            "every engine batch must run off the live counts"
        );
        prop_assert_eq!(result.counts_ops > 0, !trips.is_empty() || !pool.is_empty());
    }

    /// End-to-end policy differential: IRG/LS/SHORT produce byte-identical
    /// results whether rates come from the incremental lazy tracker
    /// (default), the verbatim eager reference path (`reference_rates`),
    /// or the reference path on the legacy per-Δ loop.
    #[test]
    fn queueing_policies_are_invariant_to_the_rate_path(seed in 0u64..24) {
        let (trips, pool, schedule) = random_world(seed);
        let grid = Grid::nyc_16x16();
        let travel = ConstantSpeedModel::default();
        let series = count_trips(&trips, &grid);
        let config = SimConfig {
            batch_interval_ms: DELTA_MS,
            horizon_ms: HORIZON_MS,
            seed,
            ..SimConfig::default()
        };
        let sim = Simulator::new(config, &travel, &grid);
        let variants: [fn(DispatchConfig, DemandOracle) -> QueueingPolicy; 3] = [
            QueueingPolicy::irg,
            QueueingPolicy::ls,
            QueueingPolicy::short,
        ];
        for build in variants {
            let cfg = |reference_rates| DispatchConfig {
                reference_rates,
                ..DispatchConfig::default()
            };
            let oracle = || DemandOracle::real(series.clone(), 0);
            let mut incremental = build(cfg(false), oracle());
            let mut reference = build(cfg(true), oracle());
            let mut legacy = build(cfg(true), oracle());
            let name = incremental.name();
            let fast = sim.run_scheduled(&trips, &pool, &schedule, &mut incremental);
            let slow = sim.run_scheduled(&trips, &pool, &schedule, &mut reference);
            let loopy = sim.run_scheduled_reference(&trips, &pool, &schedule, &mut legacy);
            for (label, other) in [("reference-rates", &slow), ("legacy-loop", &loopy)] {
                prop_assert_eq!(fast.served, other.served, "{} vs {}: served", name, label);
                prop_assert_eq!(fast.reneged, other.reneged, "{} vs {}: reneged", name, label);
                prop_assert_eq!(
                    fast.total_revenue.to_bits(),
                    other.total_revenue.to_bits(),
                    "{} vs {}: revenue",
                    name,
                    label
                );
                prop_assert_eq!(
                    fast.assignments.len(),
                    other.assignments.len(),
                    "{} vs {}: assignment count",
                    name,
                    label
                );
                for (a, b) in fast.assignments.iter().zip(&other.assignments) {
                    prop_assert_eq!(
                        (a.rider, a.driver, a.batch_ms, a.pickup_ms,
                         a.estimated_idle_s.map(f64::to_bits)),
                        (b.rider, b.driver, b.batch_ms, b.pickup_ms,
                         b.estimated_idle_s.map(f64::to_bits)),
                        "{} vs {}: assignment diverged",
                        name,
                        label
                    );
                }
            }
        }
    }
}

/// A travel model with a constant one-minute leg regardless of geometry:
/// with Δ = 60 s every pickup and dropoff lands *exactly* on a batch
/// slot — the adversarial alignment for the rejoin-window boundary.
struct FixedMinute;

impl TravelModel for FixedMinute {
    fn travel_time_ms(&self, _a: Point, _b: Point) -> u64 {
        60_000
    }
}

/// Regression for the rejoin-window boundary: a dropoff landing exactly
/// on a batch slot has already produced an available driver when that
/// batch runs; it must appear in `|D_k|` once and in `|D̂_k|` never —
/// under the live counts and the scan path alike.
#[test]
fn dropoff_exactly_on_a_batch_slot_is_counted_once() {
    let grid = Grid::nyc_16x16();
    let travel = FixedMinute;
    let p = Point::new(-73.98, 40.75);
    let trips = vec![
        TripRecord {
            id: 0,
            request_ms: 0,
            pickup: p,
            dropoff: Point::new(-73.95, 40.78),
        },
        // Arrives exactly when trip 0's driver drops off (batch 0 assigns,
        // pickup at 60 s, dropoff at 120 s — a batch slot).
        TripRecord {
            id: 1,
            request_ms: 120_000,
            pickup: Point::new(-73.90, 40.80),
            dropoff: p,
        },
    ];
    let pool = vec![p];
    let sim = Simulator::new(
        SimConfig {
            batch_interval_ms: 60_000,
            horizon_ms: 600_000,
            ..SimConfig::default()
        },
        &travel,
        &grid,
    );
    let series = count_trips(&trips, &grid);
    let mut audit = RateAudit::new(series);
    let result = sim.run_scheduled(&trips, &pool, &DriverSchedule::constant(1), &mut audit);
    assert_eq!(result.served, 2, "both trips must be served");
    assert_eq!(
        result.assignments[0].dropoff_ms, 120_000,
        "the first dropoff must land exactly on a batch slot"
    );
    assert_eq!(
        result.assignments[1].batch_ms, 120_000,
        "the second trip must be dispatched at that exact slot"
    );
    // The audit ran its per-region equality checks at the aligned slot
    // (including |D̂| = 0 there: the dropped-off driver is available,
    // not rejoining — the double-count the half-open window prevents).
    assert!(audit.checks >= 2);
}
