//! Statistical integration tests: the generated workload really has the
//! properties the paper's analysis assumes, end to end.

use mrvd::prelude::*;
use mrvd::stats::chi_square_gof_poisson;

/// Appendix B protocol: `weekdays` weekdays × 10 one-minute pickup
/// counts at 8 A.M. in a core rectangle, chi-square-tested against the
/// Poisson hypothesis.
fn chi_square_protocol(weekdays: usize, orders_per_day: f64, seed: u64) {
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day,
        seed,
        ..NycLikeConfig::default()
    });
    let in_rect = |p: Point| p.lon >= -74.01 && p.lon < -73.97 && p.lat >= 40.70 && p.lat < 40.80;
    let mut samples: Vec<u64> = Vec::new();
    let mut day = 0usize;
    let mut sampled = 0;
    while sampled < weekdays {
        if day % 7 < 5 {
            let trips = gen.generate_day_trips(day);
            let mut counts = [0u64; 10];
            for t in &trips {
                let minute = t.request_ms / 60_000;
                if (480..490).contains(&minute) && in_rect(t.pickup) {
                    counts[(minute - 480) as usize] += 1;
                }
            }
            samples.extend_from_slice(&counts);
            sampled += 1;
        }
        day += 1;
    }
    assert_eq!(samples.len(), 10 * weekdays);
    let outcome = chi_square_gof_poisson(&samples, 0.05, 5.0);
    assert!(
        outcome.accepted,
        "Poisson hypothesis rejected: k = {:.3} ≥ {:.3}",
        outcome.statistic, outcome.critical
    );
    assert!(outcome.lambda_hat > 1.0, "rate too small to be meaningful");
}

#[test]
#[ignore = "full 21-weekday Appendix B protocol takes ~45 s; run with --ignored"]
fn generated_arrivals_pass_the_papers_chi_square_protocol() {
    chi_square_protocol(21, 60_000.0, 123);
}

#[test]
fn generated_arrivals_pass_chi_square_smoke() {
    // Seeded fast variant of the full protocol above: 6 weekdays is the
    // fewest that keeps enough chi-square bins past the min-expected-count
    // merge to make acceptance meaningful.
    chi_square_protocol(6, 60_000.0, 123);
}

#[test]
fn day_volumes_follow_weekly_structure() {
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day: 30_000.0,
        seed: 3,
        ..NycLikeConfig::default()
    });
    let counts = gen.generate_counts(14);
    // Sundays (days 6, 13) are the quietest days of their weeks.
    for week in 0..2 {
        let base = week * 7;
        let day_total =
            |d: usize| -> f64 { (0..SLOTS_PER_DAY).map(|s| counts.slot_total(d, s)).sum() };
        let sunday = day_total(base + 6);
        for d in 0..5 {
            assert!(
                sunday < day_total(base + d),
                "week {week}: Sunday ({sunday}) not quietest"
            );
        }
    }
}

#[test]
fn trips_peak_in_the_morning_and_evening() {
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day: 40_000.0,
        seed: 5,
        ..NycLikeConfig::default()
    });
    let trips = gen.generate_day_trips(0);
    let hour_count = |h: u64| {
        trips
            .iter()
            .filter(|t| t.request_ms / 3_600_000 == h)
            .count()
    };
    let am_rush = hour_count(8);
    let pm_rush = hour_count(18);
    let night = hour_count(3);
    assert!(am_rush > 3 * night, "8am {am_rush} vs 3am {night}");
    assert!(pm_rush > 3 * night, "6pm {pm_rush} vs 3am {night}");
}

#[test]
fn morning_trips_flow_into_the_core() {
    // Example 1's imbalance: at 8 A.M., the Midtown cell receives more
    // dropoffs than it emits pickups.
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day: 80_000.0,
        seed: 2,
        ..NycLikeConfig::default()
    });
    let grid = Grid::nyc_16x16();
    let midtown = grid.region_of(Point::new(-73.985, 40.755));
    let trips = gen.generate_day_trips(0);
    let (mut inflow, mut outflow) = (0, 0);
    for t in &trips {
        let h = t.request_ms / 3_600_000;
        if !(7..10).contains(&h) {
            continue;
        }
        if grid.region_of(t.dropoff) == midtown {
            inflow += 1;
        }
        if grid.region_of(t.pickup) == midtown {
            outflow += 1;
        }
    }
    assert!(
        inflow > outflow,
        "morning Midtown inflow {inflow} ≤ outflow {outflow}"
    );
}

#[test]
fn expected_idle_time_is_consistent_with_generated_region_rates() {
    // Plug realistic morning rates of a core region into the closed form
    // and sanity-check the magnitude: with λ ≈ 20 riders per window and a
    // couple of competing drivers, idle should be well under the window.
    let lambda = 20.0 / 900.0;
    let mu = 5.0 / 900.0;
    let params = QueueParams::new(lambda, mu, 8, Reneging::Exp { beta: 0.05 });
    let et = expected_idle_time(&params).expect("converges");
    assert!(et > 0.0 && et < 900.0, "ET {et}");
}
