//! Property-based equivalence for the engine's live batch views: under
//! random event sequences — admissions, reneges, assignments, dropoffs,
//! and the shift-change traffic of drivers appearing, parking and
//! retiring — the incrementally maintained [`BatchViews`] must hold
//! exactly the memberships a from-scratch scan rebuild produces, with
//! every id→slot map entry pointing at its own record. Order is *not*
//! part of the contract (swap-removes permute the slot vectors); the
//! policies are permutation-invariant by their id tie-breaks, which the
//! engine batteries pin separately.

use mrvd::sim::{AvailableDriver, BatchViews, BusyDriver, DriverId, RiderId, WaitingRider};
use mrvd::spatial::Point;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The naive model: plain id-keyed sets of the three memberships.
#[derive(Default)]
struct Model {
    waiting: Vec<WaitingRider>,
    available: Vec<AvailableDriver>,
    busy: Vec<BusyDriver>,
}

fn rider(id: u32, t: u64) -> WaitingRider {
    WaitingRider {
        id: RiderId(id),
        pickup: Point::new(-73.98, 40.75),
        dropoff: Point::new(-73.90, 40.80),
        request_ms: t,
        deadline_ms: t + 120_000,
    }
}

fn avail(id: u32, t: u64) -> AvailableDriver {
    AvailableDriver {
        id: DriverId(id),
        pos: Point::new(-73.95, 40.77),
        available_since_ms: t,
    }
}

fn busy(id: u32, t: u64) -> BusyDriver {
    BusyDriver {
        id: DriverId(id),
        dropoff_ms: t + 600_000,
        dropoff_pos: Point::new(-73.88, 40.82),
    }
}

/// Checks the live views against a scan rebuild of the model: identical
/// memberships (as id sets, with matching payload timestamps) and every
/// slot map entry pointing at its own record.
fn assert_matches_rebuild(views: &BatchViews, model: &Model) {
    let mut reference = BatchViews::new();
    reference.rebuild_reference(
        model.waiting.iter().copied(),
        model.available.iter().copied(),
        model.busy.iter().copied(),
    );
    let key_w = |v: &BatchViews| {
        let mut k: Vec<(u32, u64)> = v.waiting().iter().map(|r| (r.id.0, r.request_ms)).collect();
        k.sort_unstable();
        k
    };
    let key_a = |v: &BatchViews| {
        let mut k: Vec<(u32, u64)> = v
            .available()
            .iter()
            .map(|d| (d.id.0, d.available_since_ms))
            .collect();
        k.sort_unstable();
        k
    };
    let key_b = |v: &BatchViews| {
        let mut k: Vec<(u32, u64)> = v.busy().iter().map(|d| (d.id.0, d.dropoff_ms)).collect();
        k.sort_unstable();
        k
    };
    assert_eq!(key_w(views), key_w(&reference), "waiting membership");
    assert_eq!(key_a(views), key_a(&reference), "available membership");
    assert_eq!(key_b(views), key_b(&reference), "busy membership");
    for (slot, r) in views.waiting().iter().enumerate() {
        assert_eq!(views.waiting_slot(r.id), Some(slot), "waiting slot map");
    }
    for (slot, d) in views.available().iter().enumerate() {
        assert_eq!(views.avail_slot(d.id), Some(slot), "available slot map");
    }
    for (slot, d) in views.busy().iter().enumerate() {
        assert_eq!(views.busy_slot(d.id), Some(slot), "busy slot map");
    }
}

proptest! {
    /// Random event sequences — each step applies one of the engine's
    /// real transitions (admission, renege, assignment, dropoff, a
    /// driver waking on shift, parking off shift, or retiring straight
    /// out of a trip) — and the live views stay equal to a scan rebuild
    /// at every checkpoint.
    #[test]
    fn live_views_match_scan_rebuild_on_random_event_sequences(seed in 0u64..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut views = BatchViews::new();
        let mut model = Model::default();
        let mut next_rider = 0u32;
        let mut offline: Vec<u32> = (0..rng.gen_range(1u32..12)).collect();
        let n_steps = rng.gen_range(30usize..160);
        let mut ops_before = views.ops_applied();
        for step in 0..n_steps {
            let t = step as u64 * 1_000;
            match rng.gen_range(0u8..7) {
                // Admission: a new rider starts waiting.
                0 => {
                    let r = rider(next_rider, t);
                    next_rider += 1;
                    model.waiting.push(r);
                    views.add_waiting(r);
                }
                // Renege: a waiting rider leaves unserved.
                1 if !model.waiting.is_empty() => {
                    let i = rng.gen_range(0..model.waiting.len());
                    let r = model.waiting.swap_remove(i);
                    views.remove_waiting(r.id);
                }
                // Assignment: a waiting rider pairs with an available
                // driver, who goes busy.
                2 if !model.waiting.is_empty() && !model.available.is_empty() => {
                    let i = rng.gen_range(0..model.waiting.len());
                    let r = model.waiting.swap_remove(i);
                    views.remove_waiting(r.id);
                    let j = rng.gen_range(0..model.available.len());
                    let d = model.available.swap_remove(j);
                    views.remove_available(d.id);
                    let b = busy(d.id.0, t);
                    model.busy.push(b);
                    views.add_busy(b);
                }
                // Dropoff: a busy driver rejoins the available pool.
                3 if !model.busy.is_empty() => {
                    let i = rng.gen_range(0..model.busy.len());
                    let b = model.busy.swap_remove(i);
                    views.remove_busy(b.id);
                    let d = avail(b.id.0, t);
                    model.available.push(d);
                    views.add_available(d);
                }
                // Shift on: an offline driver wakes up available.
                4 if !offline.is_empty() => {
                    let i = rng.gen_range(0..offline.len());
                    let id = offline.swap_remove(i);
                    let d = avail(id + 1_000, t);
                    model.available.push(d);
                    views.add_available(d);
                }
                // Shift off: an idle driver parks immediately.
                5 if !model.available.is_empty() => {
                    let j = rng.gen_range(0..model.available.len());
                    let d = model.available.swap_remove(j);
                    views.remove_available(d.id);
                }
                // Retire mid-trip: a ramped-down busy driver leaves the
                // fleet at dropoff instead of rejoining.
                6 if !model.busy.is_empty() => {
                    let i = rng.gen_range(0..model.busy.len());
                    let b = model.busy.swap_remove(i);
                    views.remove_busy(b.id);
                }
                _ => {}
            }
            // Batch boundary every few events: check equality and drain
            // the dirty counter exactly as the engine does.
            if step % 5 == 4 {
                assert_matches_rebuild(&views, &model);
                let ops_since = views.ops_applied() - ops_before;
                prop_assert!(
                    (views.entries_dirtied() as u64) <= 2 * ops_since,
                    "each op dirties at most the target and one relocated filler"
                );
                views.clear_dirty();
                ops_before = views.ops_applied();
            }
        }
        assert_matches_rebuild(&views, &model);
    }

    /// A scan rebuild mid-sequence resets the structure to a consistent
    /// state the incremental path can keep extending.
    #[test]
    fn incremental_path_continues_cleanly_after_a_rebuild(seed in 0u64..16) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut views = BatchViews::new();
        let mut model = Model::default();
        for i in 0..rng.gen_range(1u32..20) {
            let r = rider(i, 0);
            model.waiting.push(r);
            views.add_waiting(r);
            let d = avail(i, 0);
            model.available.push(d);
            views.add_available(d);
        }
        // Rebuild from the model (as the reference loop would): the scan
        // replaces all state but counts neither ops nor dirty entries.
        let ops = views.ops_applied();
        views.clear_dirty();
        views.rebuild_reference(
            model.waiting.iter().copied(),
            model.available.iter().copied(),
            model.busy.iter().copied(),
        );
        prop_assert_eq!(views.ops_applied(), ops, "rebuild counts no live ops");
        prop_assert_eq!(views.entries_dirtied(), 0);
        // …then keep mutating incrementally.
        let r = model.waiting.swap_remove(0);
        views.remove_waiting(r.id);
        let d = model.available.swap_remove(0);
        views.remove_available(d.id);
        let b = busy(d.id.0, 1_000);
        model.busy.push(b);
        views.add_busy(b);
        assert_matches_rebuild(&views, &model);
    }
}
