//! Cross-crate invariant tests: adversarial policies, validity
//! enforcement, LS structural properties, and oracle consistency.

use mrvd::prelude::*;
use rand::rngs::StdRng;

fn small_world() -> (Vec<TripRecord>, Vec<Point>, Grid, DemandSeries) {
    let gen = NycLikeGenerator::new(NycLikeConfig {
        orders_per_day: 3_000.0,
        seed: 77,
        ..NycLikeConfig::default()
    });
    let trips = gen.generate_day_trips(0);
    let mut rng = StdRng::seed_from_u64(1);
    let drivers = sample_driver_positions(&trips, 40, &mut rng);
    let grid = Grid::nyc_16x16();
    let series = count_trips(&trips, &grid);
    (trips, drivers, grid, series)
}

/// A hostile policy that assigns the first rider to the first driver
/// without checking validity — the simulator must reject it.
struct InvalidPairPolicy;

impl DispatchPolicy for InvalidPairPolicy {
    fn name(&self) -> String {
        "invalid".into()
    }
    fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
        // Find a rider/driver pair that is NOT valid and emit it.
        for r in ctx.riders {
            for d in ctx.drivers {
                if !ctx.is_valid_pair(r, d) {
                    return vec![Assignment {
                        rider: r.id,
                        driver: d.id,
                        estimated_idle_s: None,
                    }];
                }
            }
        }
        Vec::new()
    }
}

/// A hostile policy that double-books a driver in one batch.
struct DoubleBookPolicy;

impl DispatchPolicy for DoubleBookPolicy {
    fn name(&self) -> String {
        "double-book".into()
    }
    fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
        let mut valid = Vec::new();
        for d in ctx.drivers {
            for r in ctx.riders {
                if ctx.is_valid_pair(r, d) {
                    valid.push(Assignment {
                        rider: r.id,
                        driver: d.id,
                        estimated_idle_s: None,
                    });
                    if valid.len() == 2 && valid[0].driver == valid[1].driver {
                        return valid;
                    }
                }
            }
            valid.clear();
        }
        Vec::new()
    }
}

#[test]
#[should_panic(expected = "deadline")]
fn simulator_rejects_invalid_pairs() {
    let (trips, drivers, grid, _) = small_world();
    let travel = ConstantSpeedModel::default();
    let sim = Simulator::new(SimConfig::default(), &travel, &grid);
    sim.run(&trips, &drivers, &mut InvalidPairPolicy);
}

#[test]
#[should_panic(expected = "busy driver")]
fn simulator_rejects_double_booking() {
    let (trips, drivers, grid, _) = small_world();
    let travel = ConstantSpeedModel::default();
    let sim = Simulator::new(SimConfig::default(), &travel, &grid);
    sim.run(&trips, &drivers, &mut DoubleBookPolicy);
}

#[test]
fn queueing_policy_outputs_only_valid_unique_pairs() {
    // Wrap IRG and audit every batch's output independently.
    struct Auditor {
        inner: QueueingPolicy,
        batches_checked: usize,
    }
    impl DispatchPolicy for Auditor {
        fn name(&self) -> String {
            "audited".into()
        }
        fn assign(&mut self, ctx: &BatchContext<'_>) -> Vec<Assignment> {
            let out = self.inner.assign(ctx);
            let mut riders = std::collections::HashSet::new();
            let mut drivers = std::collections::HashSet::new();
            for a in &out {
                assert!(riders.insert(a.rider), "rider assigned twice");
                assert!(drivers.insert(a.driver), "driver assigned twice");
                let rider = ctx
                    .riders
                    .iter()
                    .find(|r| r.id == a.rider)
                    .expect("known rider");
                let driver = ctx
                    .drivers
                    .iter()
                    .find(|d| d.id == a.driver)
                    .expect("known driver");
                assert!(ctx.is_valid_pair(rider, driver), "invalid pair emitted");
                let est = a
                    .estimated_idle_s
                    .expect("queueing policies attach estimates");
                assert!(est.is_finite() && est >= 0.0);
            }
            if !out.is_empty() {
                self.batches_checked += 1;
            }
            out
        }
    }
    let (trips, drivers, grid, series) = small_world();
    let travel = ConstantSpeedModel::default();
    let sim = Simulator::new(SimConfig::default(), &travel, &grid);
    let mut audited = Auditor {
        inner: QueueingPolicy::irg(DispatchConfig::default(), DemandOracle::real(series, 0)),
        batches_checked: 0,
    };
    let res = sim.run(&trips, &drivers, &mut audited);
    assert!(audited.batches_checked > 10, "too few non-empty batches");
    assert!(res.served > 0);
}

#[test]
fn ls_assigns_at_least_as_much_revenue_weight_as_its_greedy_seed() {
    // LS only replaces riders per driver (never drops assignments), so
    // its per-batch cardinality matches IRG's. Verify on a full day via
    // total assignment counts with identical seeds.
    let (trips, drivers, grid, series) = small_world();
    let travel = ConstantSpeedModel::default();
    let sim = Simulator::new(SimConfig::default(), &travel, &grid);
    let mut irg = QueueingPolicy::irg(
        DispatchConfig::default(),
        DemandOracle::real(series.clone(), 0),
    );
    let irg_res = sim.run(&trips, &drivers, &mut irg);
    let mut ls = QueueingPolicy::ls(DispatchConfig::default(), DemandOracle::real(series, 0));
    let ls_res = sim.run(&trips, &drivers, &mut ls);
    // Identical batch cardinality would require identical downstream
    // states; over a full day the counts drift, but LS must stay in the
    // same ballpark (its swaps never reduce per-batch counts).
    assert!(
        (ls_res.served as f64) > 0.9 * irg_res.served as f64,
        "LS served {} vs IRG {}",
        ls_res.served,
        irg_res.served
    );
}

#[test]
fn oracle_window_covering_full_slot_returns_slot_counts() {
    let (_, _, grid, series) = small_world();
    let oracle = DemandOracle::real(series.clone(), 0);
    // Window exactly covering slot 17.
    let w = oracle.upcoming_riders(17 * SLOT_MS, SLOT_MS);
    assert_eq!(w.len(), grid.num_regions());
    for (r, &wr) in w.iter().enumerate() {
        assert!(
            (wr - series.get(0, 17, r)).abs() < 1e-9,
            "region {r}: window {} vs slot {}",
            wr,
            series.get(0, 17, r)
        );
    }
    // Two windows tiling a slot sum to the slot.
    let a = oracle.upcoming_riders(17 * SLOT_MS, SLOT_MS / 2);
    let b = oracle.upcoming_riders(17 * SLOT_MS + SLOT_MS / 2, SLOT_MS / 2);
    for r in 0..grid.num_regions() {
        assert!((a[r] + b[r] - w[r]).abs() < 1e-9);
    }
}

#[test]
fn upper_bound_service_is_monotone_in_fleet_size() {
    let (trips, _, grid, _) = small_world();
    let travel = ConstantSpeedModel::default();
    let sim = Simulator::new(SimConfig::default(), &travel, &grid);
    let mut rng = StdRng::seed_from_u64(9);
    let mut prev = 0usize;
    for n in [10usize, 40, 160] {
        let drivers = sample_driver_positions(&trips, n, &mut rng);
        let res = sim.run(&trips, &drivers, &mut Upper);
        assert!(
            res.served >= prev,
            "UPPER served {} with {n} drivers, less than {prev} with fewer",
            res.served
        );
        prev = res.served;
    }
}
