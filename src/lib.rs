//! # MRVD — Queueing-Theoretic Vehicle Dispatching for Dynamic Car-Hailing
//!
//! A from-scratch Rust reproduction of *"A Queueing-Theoretic Framework
//! for Vehicle Dispatching in Dynamic Car-Hailing"* (Cheng, Jin, Chen,
//! Lin, Zheng — ICDE 2019 / arXiv:2107.08662): the complete system, every
//! substrate it depends on, every baseline it compares against, and the
//! harness that regenerates every table and figure of its evaluation.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! namespace so examples and downstream users need a single dependency.
//!
//! ```
//! use mrvd::prelude::*;
//!
//! // Generate a small NYC-like day, place 50 drivers, dispatch with IRG.
//! let gen = NycLikeGenerator::new(NycLikeConfig {
//!     orders_per_day: 2_000.0,
//!     ..NycLikeConfig::default()
//! });
//! let trips = gen.generate_day_trips(0);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let drivers = sample_driver_positions(&trips, 50, &mut rng);
//!
//! let grid = Grid::nyc_16x16();
//! let travel = ConstantSpeedModel::default();
//! let series = count_trips(&trips, &grid);
//! let oracle = DemandOracle::real(series, 0);
//! let mut policy = QueueingPolicy::irg(DispatchConfig::default(), oracle);
//!
//! let sim = Simulator::new(SimConfig::default(), &travel, &grid);
//! let result = sim.run(&trips, &drivers, &mut policy);
//! assert!(result.served > 0);
//! ```
//!
//! ## Crate map
//!
//! | Module | Workspace crate | Contents |
//! |---|---|---|
//! | [`core`] | `mrvd-core` | IRG / LS / SHORT, LTG / NEAR / RAND, POLAR, UPPER |
//! | [`queueing`] | `mrvd-queueing` | double-sided region queues, `ET(λ,μ)` |
//! | [`sim`] | `mrvd-sim` | event-driven simulation core (+ legacy reference loop) |
//! | [`prediction`] | `mrvd-prediction` | HA / LR / GBRT / DeepST / DeepST-GC |
//! | [`demand`] | `mrvd-demand` | NYC-like workload generation |
//! | [`scenario`] | `mrvd-scenario` | declarative workload scenarios + sweeps |
//! | [`spatial`] | `mrvd-spatial` | grids, travel models, road networks |
//! | [`matching`] | `mrvd-matching` | greedy / Hungarian / Hopcroft–Karp |
//! | [`stats`] | `mrvd-stats` | Poisson, chi-square, error metrics |

#![forbid(unsafe_code)]

pub use mrvd_core as core;
pub use mrvd_demand as demand;
pub use mrvd_matching as matching;
pub use mrvd_prediction as prediction;
pub use mrvd_queueing as queueing;
pub use mrvd_scenario as scenario;
pub use mrvd_sim as sim;
pub use mrvd_spatial as spatial;
pub use mrvd_stats as stats;

/// One-stop imports for examples and quick starts.
pub mod prelude {
    pub use mrvd_core::{
        DemandOracle, DispatchConfig, Ltg, Near, Polar, PolarConfig, PriorityRule, QueueingPolicy,
        Rand, SearchMode, Upper,
    };
    pub use mrvd_demand::{
        count_trips, sample_driver_positions, DemandSeries, NycLikeConfig, NycLikeGenerator,
        TripRecord, UniformConfig, UniformGenerator, DAY_MS, SLOTS_PER_DAY, SLOT_MS,
    };
    pub use mrvd_prediction::{
        DeepStConfig, DeepStNet, Gbrt, GbrtConfig, GraphConvConfig, GraphConvNet,
        HistoricalAverage, LinearRegression, Predictor,
    };
    pub use mrvd_queueing::{expected_idle_time, QueueParams, Reneging, SteadyState};
    pub use mrvd_scenario::{ScenarioSpec, SlowdownModel, SweepPolicy};
    pub use mrvd_sim::{
        Assignment, BatchContext, DispatchPolicy, DriverId, DriverSchedule, RenegeRecord, RiderId,
        SimConfig, SimResult, Simulator,
    };
    pub use mrvd_spatial::{
        ConstantSpeedModel, Grid, Point, RegionId, RoadNetwork, RoadNetworkModel, TravelModel,
    };
    pub use rand::SeedableRng;
}
